package plan

import (
	"math"
	"time"

	"benu/internal/estimate"
	"benu/internal/graph"
)

// SearchStats counts the expensive operations of Algorithm 3, reported
// relative to their upper bounds in Table IV.
type SearchStats struct {
	// Alpha is the number of match-count estimations performed during the
	// matching-order search (line 15). Upper bound: Σ_{i=1..n} P(n, i).
	Alpha int64
	// Beta is the number of optimized execution plans generated for
	// candidate orders (line 5). Upper bound: n!.
	Beta int64
	// Elapsed is the wall-clock time of the whole best-plan generation.
	Elapsed time.Duration
}

// AlphaUpperBound returns Σ_{i=1..n} P(n, i), the worst-case number of
// estimation operations for an n-vertex pattern.
func AlphaUpperBound(n int) float64 {
	total := 0.0
	perm := 1.0
	for i := 1; i <= n; i++ {
		perm *= float64(n - i + 1)
		total += perm
	}
	return total
}

// BetaUpperBound returns n!, the worst-case number of candidate orders.
func BetaUpperBound(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

// BestPlanResult is the outcome of GenerateBestPlan.
type BestPlanResult struct {
	Plan *Plan
	// Cost is the estimated cost of the chosen plan.
	Cost Cost
	// CandidateOrders are the matching orders that achieved the minimum
	// communication cost (O_cand of Algorithm 3).
	CandidateOrders [][]int
	Stats           SearchStats
}

// GenerateBestPlan implements Algorithm 3: search all matching orders
// (with dual and cost-based pruning) for the set with minimum estimated
// communication cost, generate an optimized plan for each, and return the
// one with the smallest computation cost.
func GenerateBestPlan(p *graph.Pattern, st *estimate.Stats, opts Options) (*BestPlanResult, error) {
	//benulint:wallclock search timing feeds SearchStats.Elapsed, never the chosen plan
	start := time.Now()
	n := p.NumVertices()
	res := &BestPlanResult{}

	// Dual pruning: precompute, for each vertex u, the list of vertices
	// w < u with w ≃ u. A candidate u is rejected while any such w is
	// still unused, so each SE class is explored in ascending-id order
	// only (§IV-D).
	sePred := make([][]int, n)
	for u := 1; u < n; u++ {
		for w := 0; w < u; w++ {
			if p.SyntacticallyEquivalent(int64(w), int64(u)) {
				sePred[u] = append(sePred[u], w)
			}
		}
	}

	bCommCost := math.Inf(1)
	var cand [][]int
	order := make([]int, 0, n)
	used := make([]bool, n)
	pp := newPartialPattern(p)

	var search func(commCost float64)
	search = func(commCost float64) {
		if len(order) == n {
			switch {
			case approxLess(commCost, bCommCost):
				bCommCost = commCost
				cand = [][]int{append([]int(nil), order...)}
			case approxEqual(commCost, bCommCost):
				cand = append(cand, append([]int(nil), order...))
			}
			return
		}
		for u := 0; u < n; u++ {
			if used[u] {
				continue
			}
			dualOK := true
			for _, w := range sePred[u] {
				if !used[w] {
					dualOK = false
					break
				}
			}
			if !dualOK {
				continue
			}
			// Case 1: u still has unused neighbors, so the plan will
			// carry a DBQ for u executed once per match of p' (the
			// partial pattern including u). Case 2: all neighbors used,
			// no DBQ, cost unchanged.
			s := 0.0
			hasUnusedNeighbor := false
			for _, w := range p.Adj(int64(u)) {
				if !used[w] {
					hasUnusedNeighbor = true
					break
				}
			}
			used[u] = true
			order = append(order, u)
			savedIDs, savedDegs, savedM, savedK := len(pp.ids), append([]int(nil), pp.degs...), pp.m, pp.k
			pp.add(u)
			if hasUnusedNeighbor {
				s = pp.matches(st)
				res.Stats.Alpha++
			}
			next := commCost + s
			if !approxLess(bCommCost, next) { // prune when next > bCommCost
				search(next)
			}
			// Undo.
			pp.ids = pp.ids[:savedIDs]
			pp.degs = pp.degs[:savedIDs]
			copy(pp.degs, savedDegs)
			pp.m, pp.k = savedM, savedK
			pp.used[u] = false
			order = order[:len(order)-1]
			used[u] = false
		}
	}
	search(0)

	res.CandidateOrders = cand
	best := Cost{Communication: math.Inf(1), Computation: math.Inf(1)}
	for _, o := range cand {
		pl, err := Generate(p, o, opts)
		if err != nil {
			return nil, err
		}
		res.Stats.Beta++
		c := EstimateCost(pl, st)
		if c.Less(best) || res.Plan == nil {
			best = c
			res.Plan = pl
		}
	}
	res.Cost = best
	res.Stats.Elapsed = time.Since(start) //benulint:wallclock observational stat
	return res, nil
}
