package plan

import (
	"fmt"

	"benu/internal/graph"
)

// Raw generates the raw (unoptimized) execution plan for pattern p and
// matching order (§IV-A). The order is given as 0-based pattern vertex
// ids. The returned plan has had uni-operand elimination applied, as in
// the paper.
func Raw(p *graph.Pattern, order []int) (*Plan, error) {
	n := p.NumVertices()
	if len(order) != n {
		return nil, fmt.Errorf("plan: order length %d != pattern size %d", len(order), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, u := range order {
		if u < 0 || u >= n || pos[u] >= 0 {
			return nil, fmt.Errorf("plan: order %v is not a permutation of 0..%d", order, n-1)
		}
		pos[u] = i
	}

	// Symmetry-breaking constraints indexed for O(1) lookup.
	// sbLess[a][b] means "f_a ≺ f_b required".
	sbLess := make([]map[int]bool, n)
	for i := range sbLess {
		sbLess[i] = make(map[int]bool)
	}
	for _, c := range p.SymmetryBreaking() {
		sbLess[c[0]][int(c[1])] = true
	}

	pl := &Plan{Pattern: p, Order: append([]int(nil), order...), nextTemp: n}
	add := func(in Instruction) { pl.Instrs = append(pl.Instrs, in) }

	hasLaterNeighbor := func(u int) bool {
		for _, w := range p.Adj(int64(u)) {
			if pos[w] > pos[u] {
				return true
			}
		}
		return false
	}

	// Instructions for the first vertex u_{k1}.
	first := order[0]
	add(Instruction{Op: OpINI, Target: VarRef{Kind: VarF, Index: first}})
	if hasLaterNeighbor(first) {
		add(Instruction{
			Op:       OpDBQ,
			Target:   VarRef{Kind: VarA, Index: first},
			Operands: []VarRef{{Kind: VarF, Index: first}},
		})
	}

	// Instructions for each remaining vertex in order.
	for i := 1; i < n; i++ {
		u := order[i]

		// 1) T_u := Intersect(adjacency sets of earlier matched neighbors),
		//    operands ordered by matching-order position; V(G) if none.
		var ops []VarRef
		for j := 0; j < i; j++ {
			w := order[j]
			if p.HasEdge(int64(u), int64(w)) {
				ops = append(ops, VarRef{Kind: VarA, Index: w})
			}
		}
		if len(ops) == 0 {
			ops = []VarRef{VG}
		}
		add(Instruction{Op: OpINT, Target: VarRef{Kind: VarT, Index: u}, Operands: ops})

		// 2) C_u := Intersect(T_u) | filtering conditions.
		var filters []FilterCond
		if p.Labeled() {
			filters = append(filters, FilterCond{Kind: FilterLabel, Label: p.Label(int64(u))})
		}
		for j := 0; j < i; j++ {
			w := order[j]
			switch {
			case sbLess[w][u]:
				filters = append(filters, FilterCond{Kind: FilterGT, Vertex: w})
			case sbLess[u][w]:
				filters = append(filters, FilterCond{Kind: FilterLT, Vertex: w})
			case !p.HasEdge(int64(u), int64(w)):
				// Injective condition; omitted for neighbors because
				// T_u ⊆ A_w and f_w ∉ A_w imply f_w ∉ T_u.
				filters = append(filters, FilterCond{Kind: FilterNE, Vertex: w})
			}
		}
		add(Instruction{
			Op:       OpINT,
			Target:   VarRef{Kind: VarC, Index: u},
			Operands: []VarRef{{Kind: VarT, Index: u}},
			Filters:  filters,
		})

		// 3) f_u := Foreach(C_u).
		add(Instruction{
			Op:       OpENU,
			Target:   VarRef{Kind: VarF, Index: u},
			Operands: []VarRef{{Kind: VarC, Index: u}},
		})

		// 4) A_u := GetAdj(f_u), only if a later neighbor will need it.
		if hasLaterNeighbor(u) {
			add(Instruction{
				Op:       OpDBQ,
				Target:   VarRef{Kind: VarA, Index: u},
				Operands: []VarRef{{Kind: VarF, Index: u}},
			})
		}
	}

	// RES instruction reporting f_1..f_n in vertex-id order.
	res := Instruction{Op: OpRES}
	for v := 0; v < n; v++ {
		res.Operands = append(res.Operands, VarRef{Kind: VarF, Index: v})
	}
	add(res)

	uniOperandElim(pl)
	return pl, nil
}

// uniOperandElim removes INT instructions of the form X := Intersect(Y)
// with no filtering conditions, substituting Y for X everywhere (§IV-A).
func uniOperandElim(pl *Plan) {
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(pl.Instrs); i++ {
			in := &pl.Instrs[i]
			if in.Op != OpINT || len(in.Operands) != 1 || len(in.Filters) != 0 {
				continue
			}
			target, repl := in.Target, in.Operands[0]
			pl.Instrs = append(pl.Instrs[:i], pl.Instrs[i+1:]...)
			for j := range pl.Instrs {
				pl.Instrs[j].replaceOperand(target, repl)
			}
			changed = true
			i--
		}
	}
}

// deadCodeElim removes instructions whose target is never read. INI, ENU
// and RES instructions are always kept (they have side effects on the
// search structure). Runs to a fixed point.
func deadCodeElim(pl *Plan) {
	for {
		used := make(map[VarRef]bool)
		for i := range pl.Instrs {
			in := &pl.Instrs[i]
			for _, o := range in.Operands {
				used[o] = true
			}
			if in.Op == OpTRC {
				for _, k := range in.KeyVerts {
					used[VarRef{Kind: VarF, Index: k}] = true
				}
			}
			for _, f := range in.Filters {
				if f.refsF() {
					used[VarRef{Kind: VarF, Index: f.Vertex}] = true
				}
			}
		}
		removed := false
		for i := 0; i < len(pl.Instrs); i++ {
			in := &pl.Instrs[i]
			switch in.Op {
			case OpINI, OpENU, OpRES:
				continue
			case OpDBQ, OpINT, OpTRC:
				// Set-producing instructions are the dead-code
				// candidates: eliminated below when nothing reads them.
			}
			if !used[in.Target] {
				pl.Instrs = append(pl.Instrs[:i], pl.Instrs[i+1:]...)
				removed = true
				i--
			}
		}
		if !removed {
			return
		}
	}
}
