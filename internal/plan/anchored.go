package plan

import (
	"fmt"

	"benu/internal/graph"
)

// Anchored plans — the building block of delta (dynamic-graph)
// enumeration. An anchored plan pins the first TWO vertices of the
// matching order to a given data edge instead of looping the second one:
// executing it for data edge (a, b) enumerates exactly the matches f
// with f(order[0]) = a and f(order[1]) = b.
//
// Summed over all directed pattern edges (x, y) as (order[0], order[1]),
// the anchored counts for a newly inserted data edge give the number of
// new subgraphs that edge creates: under symmetry breaking every subgraph
// has exactly one canonical match, and an injective match uses the data
// edge {a, b} in at most one pattern-edge role — so no deduplication is
// needed (see exec.DeltaCount).

// RawAnchored generates the raw plan for a matching order whose first two
// vertices are adjacent in p and both pinned by the task. The executor's
// Task supplies Start and Start2.
//
// Constraints between the two pinned vertices (symmetry breaking,
// injectivity, labels) cannot be filtered through a candidate set — the
// executor checks them once per task via the plan's AnchorChecks.
func RawAnchored(p *graph.Pattern, order []int) (*Plan, error) {
	n := p.NumVertices()
	if n < 2 {
		return nil, fmt.Errorf("plan: anchored plans need ≥ 2 pattern vertices")
	}
	if len(order) != n {
		return nil, fmt.Errorf("plan: order length %d != pattern size %d", len(order), n)
	}
	if !p.HasEdge(int64(order[0]), int64(order[1])) {
		return nil, fmt.Errorf("plan: anchored order must start with a pattern edge, got u%d,u%d",
			order[0]+1, order[1]+1)
	}
	// Generate the plain plan, then rewrite the second vertex's portion:
	// drop its candidate computation and ENU, replace with an INI.
	pl, err := Raw(p, order)
	if err != nil {
		return nil, err
	}
	second := order[1]
	kept := pl.Instrs[:0]
	for _, in := range pl.Instrs {
		switch {
		case in.Op == OpENU && in.Target.Index == second:
			kept = append(kept, Instruction{Op: OpINI, Target: in.Target})
		case (in.Op == OpINT || in.Op == OpTRC) && in.Target.Kind == VarC && in.Target.Index == second:
			// The candidate set of the pinned vertex is unused; its
			// filters move to AnchorChecks below.
			for _, f := range in.Filters {
				pl.AnchorChecks = append(pl.AnchorChecks, f)
			}
		case (in.Op == OpINT || in.Op == OpTRC) && in.Target.Kind == VarT && in.Target.Index == second:
			// Raw candidate set of the pinned vertex: dropped (its only
			// consumer was the C instruction above).
		default:
			kept = append(kept, in)
		}
	}
	pl.Instrs = kept
	pl.Anchored = true
	deadCodeElim(pl)
	if err := pl.Validate(); err != nil {
		return nil, fmt.Errorf("plan: anchored rewrite broke the plan: %w", err)
	}
	return pl, nil
}

// GenerateAnchored builds and optimizes an anchored plan. VCBC is
// rejected: delta enumeration wants explicit matches/counts per edge.
func GenerateAnchored(p *graph.Pattern, order []int, opts Options) (*Plan, error) {
	if opts.VCBC {
		return nil, fmt.Errorf("plan: anchored plans do not support VCBC compression")
	}
	raw, err := RawAnchored(p, order)
	if err != nil {
		return nil, err
	}
	return Optimize(raw, opts)
}

// AnchoredOrder builds a matching order starting with the directed
// pattern edge (x, y) and extending greedily by connectivity (most
// already-ordered neighbors first; ties by smaller vertex id).
func AnchoredOrder(p *graph.Pattern, x, y int) ([]int, error) {
	if !p.HasEdge(int64(x), int64(y)) {
		return nil, fmt.Errorf("plan: (u%d, u%d) is not a pattern edge", x+1, y+1)
	}
	n := p.NumVertices()
	used := make([]bool, n)
	order := []int{x, y}
	used[x], used[y] = true, true
	for len(order) < n {
		best, bestConn := -1, -1
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			conn := 0
			for _, w := range p.Adj(int64(v)) {
				if used[w] {
					conn++
				}
			}
			if conn > bestConn {
				best, bestConn = v, conn
			}
		}
		order = append(order, best)
		used[best] = true
	}
	return order, nil
}
