package plan

import (
	"math/rand"
	"strings"
	"testing"

	"benu/internal/estimate"
	"benu/internal/graph"
)

// demoPattern is the Fig. 1a fan and demoOrder the paper's running
// matching order u1,u3,u5,u2,u6,u4 (0-based).
func demoPattern(t *testing.T) *graph.Pattern {
	t.Helper()
	return graph.MustPattern("fan", 6, [][2]int64{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 2}, {0, 3}, {0, 4}})
}

var demoOrder = []int{0, 2, 4, 1, 5, 3}

func TestRawPlanDemoShape(t *testing.T) {
	p := demoPattern(t)
	pl, err := Raw(p, demoOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("raw plan invalid: %v\n%s", err, pl)
	}
	ops := pl.CountOps()
	// One INI, one RES, five ENU (one per non-start vertex).
	if ops[OpINI] != 1 || ops[OpRES] != 1 || ops[OpENU] != 5 {
		t.Errorf("op counts = %v\n%s", ops, pl)
	}
	// DBQ for every vertex with a later neighbor: u1, u3, u5 — u2, u6, u4
	// have all neighbors earlier in this order.
	if ops[OpDBQ] != 3 {
		t.Errorf("DBQ count = %d, want 3\n%s", ops[OpDBQ], pl)
	}
	// u4 (vertex 3) is adjacent to u1, u3, u5, all earlier: its raw
	// candidate instruction intersects A1, A3, A5.
	found := false
	for _, in := range pl.Instrs {
		if in.Op == OpINT && in.Target == (VarRef{Kind: VarT, Index: 3}) && len(in.Operands) == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing 3-way intersection for u4\n%s", pl)
	}
}

func TestRawPlanRejectsBadOrders(t *testing.T) {
	p := demoPattern(t)
	if _, err := Raw(p, []int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := Raw(p, []int{0, 0, 1, 2, 3, 4}); err == nil {
		t.Error("duplicate order accepted")
	}
	if _, err := Raw(p, []int{0, 1, 2, 3, 4, 9}); err == nil {
		t.Error("out-of-range order accepted")
	}
}

func TestCSEFollowsPaperDemo(t *testing.T) {
	p := demoPattern(t)
	raw, err := Raw(p, demoOrder)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(raw, Options{CSE: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Validate(); err != nil {
		t.Fatalf("invalid after CSE: %v\n%s", err, opt)
	}
	// The paper eliminates {A1, A3} into T7 (0-based temp index 6): there
	// must now be an instruction T:=Intersect(A1,A3) whose target feeds
	// both u2's candidate set and u4's.
	var cseTemp VarRef
	found := false
	for _, in := range opt.Instrs {
		if in.Op == OpINT && len(in.Operands) == 2 &&
			in.Operands[0] == (VarRef{Kind: VarA, Index: 0}) &&
			in.Operands[1] == (VarRef{Kind: VarA, Index: 2}) &&
			len(in.Filters) == 0 {
			cseTemp = in.Target
			found = true
		}
	}
	if !found {
		t.Fatalf("no Intersect(A1,A3) temp after CSE\n%s", opt)
	}
	uses := 0
	for _, in := range opt.Instrs {
		if in.Op != OpINT {
			continue
		}
		for _, o := range in.Operands {
			if o == cseTemp {
				uses++
			}
		}
	}
	if uses < 2 {
		t.Errorf("CSE temp used %d times, want ≥ 2\n%s", uses, opt)
	}
}

func TestReorderHoistsIntersections(t *testing.T) {
	p := demoPattern(t)
	raw, err := Raw(p, demoOrder)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(raw, Options{CSE: true, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Validate(); err != nil {
		t.Fatalf("invalid after reorder: %v\n%s", err, opt)
	}
	// The paper moves T4 := Intersect(T7, A5) forward across the ENU
	// instructions of f2 and f6: the intersection feeding u4's candidates
	// must now appear before the ENU of u2 (vertex 1).
	enuU2 := indexOf(opt, func(in *Instruction) bool {
		return in.Op == OpENU && in.Target.Index == 1
	})
	intForU4 := indexOf(opt, func(in *Instruction) bool {
		// T4 := Intersect(A5, T7) — the raw candidate set of u4 (the
		// paper's 15th instruction in Fig. 3c, hoisted in Fig. 3d).
		return in.Op == OpINT && in.Target == (VarRef{Kind: VarT, Index: 3})
	})
	if enuU2 < 0 || intForU4 < 0 {
		t.Fatalf("markers not found (enuU2=%d intForU4=%d)\n%s", enuU2, intForU4, opt)
	}
	if intForU4 > enuU2 {
		t.Errorf("u4's intersection (pos %d) not hoisted above ENU of u2 (pos %d)\n%s",
			intForU4, enuU2, opt)
	}
	// Flattening leaves no INT with > 2 operands.
	for _, in := range opt.Instrs {
		if in.Op == OpINT && len(in.Operands) > 2 {
			t.Errorf("unflattened instruction %s", in.String())
		}
	}
	// INI first, RES last.
	if opt.Instrs[0].Op != OpINI || opt.Instrs[len(opt.Instrs)-1].Op != OpRES {
		t.Errorf("INI/RES not at boundaries\n%s", opt)
	}
}

func TestTriangleCacheRewriteDemo(t *testing.T) {
	p := demoPattern(t)
	raw, err := Raw(p, demoOrder)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(raw, Options{CSE: true, Reorder: true, TriangleCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Validate(); err != nil {
		t.Fatalf("invalid after TRC: %v\n%s", err, opt)
	}
	// The paper converts Intersect(A1,A3) and Intersect(A1,A5) into TRC.
	trcs := opt.CountOps()[OpTRC]
	if trcs != 2 {
		t.Errorf("TRC count = %d, want 2\n%s", trcs, opt)
	}
	for _, in := range opt.Instrs {
		if in.Op == OpTRC {
			hasStart := false
			for _, k := range in.KeyVerts {
				if k == 0 {
					hasStart = true
				}
			}
			if !hasStart {
				t.Errorf("TRC key %v does not involve the start vertex", in.KeyVerts)
			}
		}
	}
}

func TestVCBCDemoCover(t *testing.T) {
	p := demoPattern(t)
	raw, err := Raw(p, demoOrder)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(raw, AllOptions)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Validate(); err != nil {
		t.Fatalf("invalid after VCBC: %v\n%s", err, opt)
	}
	// The paper: the first three vertices u1, u3, u5 of the order form
	// the cover; u2, u6, u4 are compressed away.
	if !opt.Compressed || opt.CoverSize != 3 {
		t.Fatalf("cover size = %d (compressed=%v), want 3\n%s", opt.CoverSize, opt.Compressed, opt)
	}
	if len(opt.Free) != 3 {
		t.Fatalf("free = %v, want 3 vertices", opt.Free)
	}
	// Free vertices have no ENU.
	for _, in := range opt.Instrs {
		if in.Op == OpENU {
			for _, fv := range opt.Free {
				if in.Target.Index == fv {
					t.Errorf("free vertex u%d still enumerated", fv+1)
				}
			}
		}
	}
	// RES must have set operands for the free vertices.
	res := opt.Instrs[len(opt.Instrs)-1]
	setOps := 0
	for _, o := range res.Operands {
		if o.IsSet() {
			setOps++
		}
	}
	if setOps != 3 {
		t.Errorf("RES has %d set operands, want 3: %s", setOps, res.String())
	}
}

func TestUniOperandElimination(t *testing.T) {
	p := demoPattern(t)
	pl, err := Raw(p, demoOrder)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range pl.Instrs {
		if in.Op == OpINT && len(in.Operands) == 1 && len(in.Filters) == 0 {
			t.Errorf("surviving uni-operand instruction %s", in.String())
		}
	}
}

func TestOptimizeIsNonDestructive(t *testing.T) {
	p := demoPattern(t)
	raw, err := Raw(p, demoOrder)
	if err != nil {
		t.Fatal(err)
	}
	before := raw.String()
	if _, err := Optimize(raw, AllOptions); err != nil {
		t.Fatal(err)
	}
	if raw.String() != before {
		t.Error("Optimize mutated its input plan")
	}
}

func TestPlanStringRendersPaperNotation(t *testing.T) {
	p := demoPattern(t)
	pl, _ := Raw(p, demoOrder)
	s := pl.String()
	for _, frag := range []string{"f1:=Init(start)", "GetAdj", "Foreach", "ReportMatch"} {
		if !strings.Contains(s, frag) {
			t.Errorf("plan rendering missing %q:\n%s", frag, s)
		}
	}
}

func indexOf(pl *Plan, pred func(*Instruction) bool) int {
	for i := range pl.Instrs {
		if pred(&pl.Instrs[i]) {
			return i
		}
	}
	return -1
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := demoPattern(t)
	pl, _ := Raw(p, demoOrder)

	// Use-before-def.
	bad := pl.clone()
	bad.Instrs[1], bad.Instrs[len(bad.Instrs)-2] = bad.Instrs[len(bad.Instrs)-2], bad.Instrs[1]
	if err := bad.Validate(); err == nil {
		t.Error("swapped instructions validated")
	}

	// RES not last.
	bad2 := pl.clone()
	bad2.Instrs = append(bad2.Instrs, Instruction{Op: OpINT, Target: bad2.freshTemp(), Operands: []VarRef{VG, VG}})
	if err := bad2.Validate(); err == nil {
		t.Error("RES-not-last validated")
	}

	// Bad order.
	bad3 := pl.clone()
	bad3.Order[0], bad3.Order[1] = bad3.Order[1], bad3.Order[0]
	if err := bad3.Validate(); err == nil {
		t.Error("order mismatch validated")
	}
}

func TestGenerateBestPlanDemo(t *testing.T) {
	p := demoPattern(t)
	st := estimate.UniformStats(10000, 20)
	res, err := GenerateBestPlan(p, st, OptimizedUncompressed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("no plan returned")
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatalf("best plan invalid: %v", err)
	}
	if res.Stats.Alpha <= 0 || res.Stats.Beta <= 0 {
		t.Errorf("stats not collected: %+v", res.Stats)
	}
	if float64(res.Stats.Alpha) > AlphaUpperBound(p.NumVertices()) {
		t.Errorf("alpha %d exceeds upper bound %g", res.Stats.Alpha, AlphaUpperBound(p.NumVertices()))
	}
	if float64(res.Stats.Beta) > BetaUpperBound(p.NumVertices()) {
		t.Errorf("beta %d exceeds upper bound %g", res.Stats.Beta, BetaUpperBound(p.NumVertices()))
	}
	if len(res.CandidateOrders) == 0 {
		t.Error("no candidate orders")
	}
}

// exhaustiveBestComm computes the minimum communication cost over all
// n! orders without any pruning, as ground truth for the pruned search.
func exhaustiveBestComm(p *graph.Pattern, st *estimate.Stats) float64 {
	n := p.NumVertices()
	best := -1.0
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(i int, pp *partialPattern, comm float64)
	rec = func(i int, pp *partialPattern, comm float64) {
		if i == n {
			if best < 0 || comm < best {
				best = comm
			}
			return
		}
		for u := 0; u < n; u++ {
			if used[u] {
				continue
			}
			used[u] = true
			perm[i] = u
			hasUnused := false
			for _, w := range p.Adj(int64(u)) {
				if !used[w] {
					hasUnused = true
					break
				}
			}
			savedIDs, savedDegs, savedM, savedK := len(pp.ids), append([]int(nil), pp.degs...), pp.m, pp.k
			pp.add(u)
			s := 0.0
			if hasUnused {
				s = pp.matches(st)
			}
			rec(i+1, pp, comm+s)
			pp.ids = pp.ids[:savedIDs]
			pp.degs = pp.degs[:savedIDs]
			copy(pp.degs, savedDegs)
			pp.m, pp.k = savedM, savedK
			pp.used[u] = false
			used[u] = false
		}
	}
	rec(0, newPartialPattern(p), 0)
	return best
}

func TestPruningPreservesBestCost(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	st := estimate.UniformStats(5000, 12)
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(2)
		var edges [][2]int64
		for v := int64(1); v < int64(n); v++ {
			edges = append(edges, [2]int64{rng.Int63n(v), v})
		}
		for u := int64(0); u < int64(n); u++ {
			for v := u + 1; v < int64(n); v++ {
				if rng.Float64() < 0.4 {
					edges = append(edges, [2]int64{u, v})
				}
			}
		}
		p := graph.MustPattern("rand", n, edges)
		want := exhaustiveBestComm(p, st)
		res, err := GenerateBestPlan(p, st, OptimizedUncompressed)
		if err != nil {
			t.Fatal(err)
		}
		got := EstimateCost(res.Plan, st).Communication
		if !approxEqual(got, want) {
			t.Errorf("trial %d (%s): pruned best comm %g != exhaustive %g", trial, p, got, want)
		}
	}
}

func TestCostPruningActuallyPrunes(t *testing.T) {
	// Regression: the +Inf "no best yet" sentinel once compared approx-
	// equal to every finite cost, so pruning never fired and all n!
	// orders became candidates.
	st := estimate.UniformStats(100000, 20)
	house := graph.MustPattern("house", 5, [][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {1, 4}})
	res, err := GenerateBestPlan(house, st, OptimizedUncompressed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CandidateOrders) >= 120 {
		t.Errorf("all %d orders became candidates — pruning inactive", len(res.CandidateOrders))
	}
	if res.Stats.Beta >= int64(BetaUpperBound(5)) {
		t.Errorf("beta %d hit its upper bound", res.Stats.Beta)
	}

	// On a clique every vertex is SE-equivalent: dual pruning leaves one
	// explorable order.
	cl, err := GenerateBestPlan(graph.MustPattern("k5", 5, [][2]int64{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}),
		st, OptimizedUncompressed)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.CandidateOrders) != 1 {
		t.Errorf("clique5 candidates = %d, want 1", len(cl.CandidateOrders))
	}
}

func TestEstimateCostOrdering(t *testing.T) {
	a := Cost{Communication: 10, Computation: 100}
	b := Cost{Communication: 10, Computation: 50}
	c := Cost{Communication: 5, Computation: 1000}
	if !b.Less(a) || a.Less(b) {
		t.Error("computation tiebreak broken")
	}
	if !c.Less(a) || a.Less(c) {
		t.Error("communication primacy broken")
	}
}

func TestUpperBounds(t *testing.T) {
	if AlphaUpperBound(3) != 3+6+6 { // P(3,1)+P(3,2)+P(3,3)
		t.Errorf("AlphaUpperBound(3) = %g", AlphaUpperBound(3))
	}
	if BetaUpperBound(5) != 120 {
		t.Errorf("BetaUpperBound(5) = %g", BetaUpperBound(5))
	}
}
