package plan

import (
	"fmt"
	"sort"

	"benu/internal/graph"
)

// Options selects which optimization passes to apply on top of the raw
// plan. The zero value applies nothing (raw plan). Passes are applied in
// the paper's order: CSE → reordering → triangle caching → VCBC.
type Options struct {
	CSE           bool // Optimization 1: common subexpression elimination
	Reorder       bool // Optimization 2: instruction reordering
	TriangleCache bool // Optimization 3: triangle caching
	VCBC          bool // rewrite to emit VCBC-compressed results

	// DegreeFilter adds the degree filtering conditions the paper names
	// in §IV-A: a candidate for pattern vertex u must have data degree
	// ≥ d_P(u). Results are unchanged; candidate sets shrink. The
	// executor needs a degree oracle (exec.Options.DegreeOf) for the
	// conditions to take effect.
	DegreeFilter bool

	// CliqueCache generalizes Optimization 3 from triangles to cliques
	// (the extension sketched at the end of §IV-B): an intersection
	// whose expanded operands are the adjacency sets of pattern vertices
	// forming a clique is served from the per-thread cache keyed by all
	// of their images.
	CliqueCache bool
}

// AllOptions enables every optimization including VCBC compression.
var AllOptions = Options{CSE: true, Reorder: true, TriangleCache: true, VCBC: true}

// OptimizedUncompressed enables Opt 1–3 but not VCBC.
var OptimizedUncompressed = Options{CSE: true, Reorder: true, TriangleCache: true}

// Optimize applies the selected passes to a copy of pl and returns it.
func Optimize(pl *Plan, opts Options) (*Plan, error) {
	out := pl.clone()
	if opts.DegreeFilter {
		addDegreeFilters(out)
	}
	if opts.CSE {
		eliminateCommonSubexpressions(out)
	}
	if opts.Reorder {
		if err := reorderInstructions(out); err != nil {
			return nil, err
		}
	}
	if opts.TriangleCache {
		applyTriangleCache(out)
	}
	if opts.CliqueCache {
		applyCliqueCache(out)
	}
	if opts.VCBC {
		if err := compressVCBC(out); err != nil {
			return nil, err
		}
	}
	deadCodeElim(out)
	return out, nil
}

// addDegreeFilters appends a FilterMinDeg condition to the candidate-set
// (C) instruction of every non-start pattern vertex u with d_P(u) ≥ 2:
// a candidate with data degree below u's pattern degree can never
// complete a match, so the condition is result-preserving. Degree-1
// vertices are skipped — every member of a non-empty candidate set
// already has degree ≥ 1.
func addDegreeFilters(pl *Plan) {
	for i := range pl.Instrs {
		in := &pl.Instrs[i]
		if in.Op != OpINT || in.Target.Kind != VarC {
			continue
		}
		if d := len(pl.Pattern.Adj(int64(in.Target.Index))); d >= 2 {
			in.Filters = append(in.Filters, FilterCond{Kind: FilterMinDeg, Degree: d})
		}
	}
	pl.DegreeFiltered = true
}

// Generate builds the raw plan for (p, order) and applies opts. It is the
// one-call entry point used by the planner and by callers with a fixed
// matching order.
func Generate(p *graph.Pattern, order []int, opts Options) (*Plan, error) {
	raw, err := Raw(p, order)
	if err != nil {
		return nil, err
	}
	return Optimize(raw, opts)
}

// ---------------------------------------------------------------------------
// Optimization 1: common subexpression elimination (§IV-B).

// varSet is a canonical (sorted) operand combination.
type varSet []VarRef

func (s varSet) key() string {
	out := ""
	for _, v := range s {
		out += v.String() + ","
	}
	return out
}

func canonicalVarSet(ops []VarRef) varSet {
	s := append(varSet(nil), ops...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].Kind != s[j].Kind {
			return s[i].Kind < s[j].Kind
		}
		return s[i].Index < s[j].Index
	})
	return s
}

// subsetOf reports whether every element of s occurs in ops.
func (s varSet) subsetOf(ops []VarRef) bool {
	for _, v := range s {
		found := false
		for _, o := range ops {
			if o == v {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// eliminateCommonSubexpressions repeatedly mines the most profitable
// common operand combination across INT instructions and factors it into
// a fresh temporary, until no combination appears in two instructions.
// Selection follows the paper: most operands first, then highest
// frequency, then earliest first appearance.
func eliminateCommonSubexpressions(pl *Plan) {
	for {
		type cand struct {
			set      varSet
			count    int
			firstIdx int
		}
		found := make(map[string]*cand)
		for idx := range pl.Instrs {
			in := &pl.Instrs[idx]
			if in.Op != OpINT || len(in.Operands) < 2 {
				continue
			}
			ops := in.Operands
			// Enumerate operand subsets of size ≥ 2 (|ops| ≤ n-1, so at
			// most 2^9 subsets for 10-vertex patterns).
			total := 1 << len(ops)
			for mask := 1; mask < total; mask++ {
				if popcount(mask) < 2 {
					continue
				}
				var sub []VarRef
				for b := 0; b < len(ops); b++ {
					if mask&(1<<b) != 0 {
						sub = append(sub, ops[b])
					}
				}
				cs := canonicalVarSet(sub)
				k := cs.key()
				if c, ok := found[k]; ok {
					if c.firstIdx != idx { // count each instruction once
						c.count++
						c.firstIdx = min(c.firstIdx, idx)
					}
				} else {
					found[k] = &cand{set: cs, count: 1, firstIdx: idx}
				}
			}
		}
		var best *cand
		//benulint:ordered selection below is a strict total order (size, count, firstIdx, key) — iteration order cannot change the winner
		for _, c := range found {
			if c.count < 2 {
				continue
			}
			if best == nil ||
				len(c.set) > len(best.set) ||
				(len(c.set) == len(best.set) && c.count > best.count) ||
				(len(c.set) == len(best.set) && c.count == best.count && c.firstIdx < best.firstIdx) ||
				(len(c.set) == len(best.set) && c.count == best.count && c.firstIdx == best.firstIdx && c.set.key() < best.set.key()) {
				best = c
			}
		}
		if best == nil {
			break
		}
		temp := pl.freshTemp()
		// Replace the combination in every INT instruction containing it.
		insertAt := -1
		for idx := range pl.Instrs {
			in := &pl.Instrs[idx]
			if in.Op != OpINT || !best.set.subsetOf(in.Operands) {
				continue
			}
			if insertAt < 0 {
				insertAt = idx
			}
			kept := in.Operands[:0]
			for _, o := range in.Operands {
				member := false
				for _, v := range best.set {
					if v == o {
						member = true
						break
					}
				}
				if !member {
					kept = append(kept, o)
				}
			}
			in.Operands = append(kept, temp)
		}
		newIn := Instruction{Op: OpINT, Target: temp, Operands: append([]VarRef(nil), best.set...)}
		pl.Instrs = append(pl.Instrs, Instruction{})
		copy(pl.Instrs[insertAt+1:], pl.Instrs[insertAt:])
		pl.Instrs[insertAt] = newIn
	}
	uniOperandElim(pl)
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Optimization 2: instruction reordering (§IV-B).

// reorderInstructions flattens multi-operand INT instructions, builds the
// dependency graph, and re-emits the instructions in ranked topological
// order so cheap instructions execute in the outermost possible loop.
func reorderInstructions(pl *Plan) error {
	flattenINT(pl)

	def := pl.defIndex()
	m := len(pl.Instrs)
	deps := make([][]int, m) // deps[i] = instruction indices i depends on
	addDep := func(i int, v VarRef) {
		if v.Kind == VarVG {
			return
		}
		j, ok := def[v]
		if !ok {
			return
		}
		deps[i] = append(deps[i], j)
	}
	for i := range pl.Instrs {
		in := &pl.Instrs[i]
		for _, o := range in.Operands {
			addDep(i, o)
		}
		for _, f := range in.Filters {
			if f.refsF() {
				addDep(i, VarRef{Kind: VarF, Index: f.Vertex})
			}
		}
		if in.Op == OpTRC {
			for _, k := range in.KeyVerts {
				addDep(i, VarRef{Kind: VarF, Index: k})
			}
		}
	}

	// Ranked topological sort: among ready instructions pick the lowest
	// (type rank, original index). m is small (O(|E(P)|)), so a linear
	// scan per step is plenty fast and keeps the code obvious.
	indeg := make([]int, m)
	dependents := make([][]int, m)
	for i, ds := range deps {
		for _, j := range ds {
			indeg[i]++
			dependents[j] = append(dependents[j], i)
		}
	}
	scheduled := make([]Instruction, 0, m)
	done := make([]bool, m)
	for len(scheduled) < m {
		pick := -1
		for i := 0; i < m; i++ {
			if done[i] || indeg[i] > 0 {
				continue
			}
			if pick < 0 {
				pick = i
				continue
			}
			ri, rp := pl.Instrs[i].Op.reorderRank(), pl.Instrs[pick].Op.reorderRank()
			if ri < rp || (ri == rp && i < pick) {
				pick = i
			}
		}
		if pick < 0 {
			return fmt.Errorf("plan: dependency cycle during reordering")
		}
		done[pick] = true
		scheduled = append(scheduled, pl.Instrs[pick])
		for _, j := range dependents[pick] {
			indeg[j]--
		}
	}
	pl.Instrs = scheduled
	return nil
}

// flattenINT rewrites INT instructions with more than two operands into
// chains of binary intersections. Operands are first sorted by the
// position of their defining instruction so the chain can hoist as far as
// its earliest operands allow; filters remain on the final instruction,
// which keeps the original target.
func flattenINT(pl *Plan) {
	for i := 0; i < len(pl.Instrs); i++ {
		in := pl.Instrs[i]
		if in.Op != OpINT || len(in.Operands) <= 2 {
			continue
		}
		def := pl.defIndex()
		ops := append([]VarRef(nil), in.Operands...)
		sort.SliceStable(ops, func(a, b int) bool {
			da, db := -1, -1
			if j, ok := def[ops[a]]; ok {
				da = j
			}
			if j, ok := def[ops[b]]; ok {
				db = j
			}
			return da < db
		})
		chain := make([]Instruction, 0, len(ops)-1)
		cur := ops[0]
		for k := 1; k < len(ops); k++ {
			if k == len(ops)-1 {
				chain = append(chain, Instruction{
					Op:       OpINT,
					Target:   in.Target,
					Operands: []VarRef{cur, ops[k]},
					Filters:  in.Filters,
				})
			} else {
				t := pl.freshTemp()
				chain = append(chain, Instruction{
					Op:       OpINT,
					Target:   t,
					Operands: []VarRef{cur, ops[k]},
				})
				cur = t
			}
		}
		pl.Instrs = append(pl.Instrs[:i], append(chain, pl.Instrs[i+1:]...)...)
		i += len(chain) - 1
	}
}

// ---------------------------------------------------------------------------
// Optimization 3: triangle caching (§IV-B).

// applyTriangleCache replaces INT instructions of the form
// X := Intersect(A_i, A_j) — where one of u_i/u_j is the first vertex of
// the matching order and the other is its neighbor in the pattern — with
// TRC instructions keyed by (f_i, f_j). Such intersections enumerate
// triangles around the start vertex and repeat across search branches;
// the executor serves them from a per-thread cache.
func applyTriangleCache(pl *Plan) {
	start := pl.Order[0]
	for i := range pl.Instrs {
		in := &pl.Instrs[i]
		if in.Op != OpINT || len(in.Operands) != 2 {
			continue
		}
		a, b := in.Operands[0], in.Operands[1]
		if a.Kind != VarA || b.Kind != VarA {
			continue
		}
		var other int
		switch start {
		case a.Index:
			other = b.Index
		case b.Index:
			other = a.Index
		default:
			continue
		}
		if !pl.Pattern.HasEdge(int64(start), int64(other)) {
			continue
		}
		in.Op = OpTRC
		if a.Index < b.Index {
			in.KeyVerts = []int{a.Index, b.Index}
		} else {
			in.KeyVerts = []int{b.Index, a.Index}
		}
	}
}

// applyCliqueCache generalizes triangle caching to cliques (§IV-B's
// sketched extension): an INT instruction whose operands expand — through
// temporaries — to the adjacency sets A_{x1}..A_{xk} of pattern vertices
// forming a k-clique computes the vertices extending that clique by one;
// the result repeats whenever the same data vertices recur, so it is
// served from the per-thread cache keyed by (f_{x1},..,f_{xk}).
func applyCliqueCache(pl *Plan) {
	// comp[v] = set of pattern vertices whose adjacency sets compose the
	// set variable v via pure (filter-free) intersections; nil when the
	// variable is not a pure intersection of A-sets.
	comp := make(map[VarRef][]int)
	for i := range pl.Instrs {
		in := &pl.Instrs[i]
		switch in.Op {
		case OpINI, OpENU, OpRES:
			// No set composition: these bind vertices or report results.
		case OpDBQ:
			comp[in.Target] = []int{in.Target.Index}
		case OpINT, OpTRC:
			if len(in.Filters) > 0 {
				continue
			}
			var verts []int
			pure := true
			for _, o := range in.Operands {
				c, ok := comp[o]
				if !ok {
					pure = false
					break
				}
				verts = append(verts, c...)
			}
			if !pure {
				continue
			}
			verts = dedupSortedInts(verts)
			comp[in.Target] = verts
			// Convert to a cached instruction when the composition is a
			// pattern clique. Compositions beyond 6 vertices are left
			// alone: their key space explodes while reuse shrinks.
			if in.Op != OpINT || len(verts) < 2 || len(verts) > 6 {
				continue
			}
			if isPatternClique(pl.Pattern, verts) {
				in.Op = OpTRC
				in.KeyVerts = verts
			}
		}
	}
}

func dedupSortedInts(xs []int) []int {
	sort.Ints(xs)
	w := 0
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			xs[w] = x
			w++
		}
	}
	return xs[:w]
}

func isPatternClique(p *graph.Pattern, verts []int) bool {
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if !p.HasEdge(int64(verts[i]), int64(verts[j])) {
				return false
			}
		}
	}
	return true
}
