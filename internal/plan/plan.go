package plan

import (
	"fmt"
	"strings"

	"benu/internal/graph"
)

// Plan is a complete BENU execution plan: a matching order plus the
// instruction sequence that enumerates all matches of Pattern following
// that order. Plans are immutable once handed to an executor.
type Plan struct {
	Pattern *graph.Pattern
	// Order is the matching order O as pattern vertex ids (0-based).
	Order []int
	// Instrs is the instruction sequence.
	Instrs []Instruction

	// Compressed marks a VCBC-compressed plan (§IV-B "Support VCBC
	// Compression"): the ENU instructions of non-cover vertices are
	// removed and RES reports their candidate sets as conditional image
	// sets instead of single vertices.
	Compressed bool
	// CoverSize is k: the first k vertices of Order form the vertex cover
	// whose matches are the helves. Meaningful only when Compressed.
	CoverSize int
	// Free lists the non-cover pattern vertices in ascending id order.
	Free []int
	// FreeOrderConstraints are symmetry-breaking constraints (a, b) —
	// meaning f_a ≺ f_b — between two free vertices. They were removed
	// from the instruction filters by the compression rewrite and must be
	// re-applied when counting or expanding compressed results.
	FreeOrderConstraints [][2]int

	// DegreeFiltered records that Options.DegreeFilter added minimum-
	// degree conditions. The cluster layer uses it to skip generating
	// tasks whose start vertex cannot match the first order vertex.
	DegreeFiltered bool

	// Anchored marks a delta-enumeration plan: the first two order
	// vertices are both pinned by the task (to a data edge) instead of
	// the second being enumerated. See RawAnchored.
	Anchored bool
	// AnchorChecks are the filtering conditions that applied to the
	// second pinned vertex's candidate set; the executor evaluates them
	// once per task against Start2.
	AnchorChecks []FilterCond

	// nextTemp is the smallest unused VarT index (temps created by CSE
	// and flattening allocate from here).
	nextTemp int
}

// clone deep-copies the plan (instructions included).
func (p *Plan) clone() *Plan {
	cp := *p
	cp.Order = append([]int(nil), p.Order...)
	cp.Instrs = make([]Instruction, len(p.Instrs))
	for i := range p.Instrs {
		cp.Instrs[i] = p.Instrs[i].clone()
	}
	cp.Free = append([]int(nil), p.Free...)
	cp.FreeOrderConstraints = append([][2]int(nil), p.FreeOrderConstraints...)
	cp.AnchorChecks = append([]FilterCond(nil), p.AnchorChecks...)
	return &cp
}

// freshTemp allocates an unused temporary variable.
func (p *Plan) freshTemp() VarRef {
	v := VarRef{Kind: VarT, Index: p.nextTemp}
	p.nextTemp++
	return v
}

// defIndex returns a map from defined variable to the index of its
// defining instruction.
func (p *Plan) defIndex() map[VarRef]int {
	def := make(map[VarRef]int, len(p.Instrs))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op == OpRES {
			continue
		}
		def[in.Target] = i
	}
	return def
}

// CountOps returns the number of instructions of each type, for tests and
// plan summaries.
func (p *Plan) CountOps() map[OpType]int {
	out := make(map[OpType]int)
	for i := range p.Instrs {
		out[p.Instrs[i].Op]++
	}
	return out
}

// Validate checks structural well-formedness: every variable is defined
// before use, each variable is assigned exactly once, ENU instructions
// appear in matching order, and the RES instruction is last. Returns the
// first violation found.
func (p *Plan) Validate() error {
	n := p.Pattern.NumVertices()
	if len(p.Order) != n {
		return fmt.Errorf("plan: order has %d vertices, pattern has %d", len(p.Order), n)
	}
	seen := make([]bool, n)
	for _, u := range p.Order {
		if u < 0 || u >= n || seen[u] {
			return fmt.Errorf("plan: order %v is not a permutation", p.Order)
		}
		seen[u] = true
	}
	defined := map[VarRef]bool{VG: true}
	checkUse := func(pos int, v VarRef) error {
		if v.Kind == VarVG {
			return nil
		}
		if !defined[v] {
			return fmt.Errorf("plan: instruction %d (%s) uses undefined %s", pos, p.Instrs[pos].String(), v)
		}
		return nil
	}
	var enuSeq []int
	for i := range p.Instrs {
		in := &p.Instrs[i]
		for _, o := range in.Operands {
			if err := checkUse(i, o); err != nil {
				return err
			}
		}
		for _, f := range in.Filters {
			if !f.refsF() {
				continue
			}
			if err := checkUse(i, VarRef{Kind: VarF, Index: f.Vertex}); err != nil {
				return err
			}
		}
		if in.Op == OpTRC {
			for _, v := range in.KeyVerts {
				if err := checkUse(i, VarRef{Kind: VarF, Index: v}); err != nil {
					return err
				}
			}
		}
		if in.Op == OpRES {
			if i != len(p.Instrs)-1 {
				return fmt.Errorf("plan: RES at %d is not the last instruction", i)
			}
			continue
		}
		if defined[in.Target] {
			return fmt.Errorf("plan: %s assigned twice (instruction %d)", in.Target, i)
		}
		defined[in.Target] = true
		if in.Op == OpENU || in.Op == OpINI {
			if in.Target.Kind != VarF {
				return fmt.Errorf("plan: instruction %d (%s) must target an f variable", i, in.String())
			}
			enuSeq = append(enuSeq, in.Target.Index)
		}
	}
	if len(p.Instrs) == 0 || p.Instrs[len(p.Instrs)-1].Op != OpRES {
		return fmt.Errorf("plan: missing RES instruction")
	}
	// ENU/INI sequence must be the matching order (minus free vertices in
	// compressed plans).
	want := p.Order
	if p.Compressed {
		want = p.Order[:p.CoverSize]
	}
	if len(enuSeq) != len(want) {
		return fmt.Errorf("plan: ENU sequence %v does not cover order %v", enuSeq, want)
	}
	for i := range want {
		if enuSeq[i] != want[i] {
			return fmt.Errorf("plan: ENU sequence %v deviates from order %v", enuSeq, want)
		}
	}
	return nil
}

// NumDBQ returns the number of DBQ instructions.
func (p *Plan) NumDBQ() int { return p.CountOps()[OpDBQ] }

// String renders the plan as numbered instructions, matching the paper's
// Fig. 3 presentation.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Plan(%s, order=[", p.Pattern.Name())
	for i, u := range p.Order {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "u%d", u+1)
	}
	b.WriteString("]")
	if p.Compressed {
		fmt.Fprintf(&b, ", VCBC cover=%d", p.CoverSize)
	}
	b.WriteString(")\n")
	for i := range p.Instrs {
		fmt.Fprintf(&b, "%2d: %s\n", i+1, p.Instrs[i].String())
	}
	return b.String()
}
