package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"benu/internal/estimate"
	"benu/internal/graph"
)

// Property-based tests over random patterns and matching orders: every
// optimization level must yield a structurally valid plan, preserve the
// DBQ/ENU skeleton that encodes the matching order, and keep the VCBC
// metadata consistent.

// randomPattern derives a connected pattern from a seed.
func randomPattern(seed int64) *graph.Pattern {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(5)
	var edges [][2]int64
	for v := int64(1); v < int64(n); v++ {
		edges = append(edges, [2]int64{rng.Int63n(v), v})
	}
	for u := int64(0); u < int64(n); u++ {
		for v := u + 1; v < int64(n); v++ {
			if rng.Float64() < 0.35 {
				edges = append(edges, [2]int64{u, v})
			}
		}
	}
	return graph.MustPattern("prop", n, edges)
}

// randomOrder derives a random matching order.
func randomOrder(n int, seed int64) []int {
	return rand.New(rand.NewSource(seed)).Perm(n)
}

func allOptionLevels() []Options {
	return []Options{
		{},
		{CSE: true},
		{CSE: true, Reorder: true},
		{CSE: true, Reorder: true, TriangleCache: true},
		{CSE: true, Reorder: true, TriangleCache: true, VCBC: true},
		{CSE: true, Reorder: true, TriangleCache: true, CliqueCache: true, DegreeFilter: true, VCBC: true},
	}
}

func TestPropertyEveryLevelValidates(t *testing.T) {
	check := func(seed int64) bool {
		p := randomPattern(seed)
		order := randomOrder(p.NumVertices(), seed+1)
		for _, opts := range allOptionLevels() {
			pl, err := Generate(p, order, opts)
			if err != nil {
				t.Logf("seed %d opts %+v: %v", seed, opts, err)
				return false
			}
			if err := pl.Validate(); err != nil {
				t.Logf("seed %d opts %+v: invalid: %v\n%s", seed, opts, err, pl)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDBQCountInvariant(t *testing.T) {
	// The number of DBQ instructions is a function of (pattern, order)
	// alone: one per vertex with a later neighbor. No optimization may
	// add or drop database queries (only VCBC can drop, and only for
	// free vertices, which never have a DBQ).
	check := func(seed int64) bool {
		p := randomPattern(seed)
		order := randomOrder(p.NumVertices(), seed+1)
		want := 0
		pos := make([]int, p.NumVertices())
		for i, u := range order {
			pos[u] = i
		}
		for u := 0; u < p.NumVertices(); u++ {
			for _, w := range p.Adj(int64(u)) {
				if pos[w] > pos[u] {
					want++
					break
				}
			}
		}
		for _, opts := range allOptionLevels() {
			pl, err := Generate(p, order, opts)
			if err != nil {
				return false
			}
			if pl.NumDBQ() != want {
				t.Logf("seed %d opts %+v: DBQ = %d, want %d\n%s", seed, opts, pl.NumDBQ(), want, pl)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyVCBCCoverIsMinimalPrefix(t *testing.T) {
	check := func(seed int64) bool {
		p := randomPattern(seed)
		order := randomOrder(p.NumVertices(), seed+1)
		pl, err := Generate(p, order, AllOptions)
		if err != nil {
			return false
		}
		if !pl.Compressed {
			// The whole order is a minimal cover: the prefix of size
			// n-1 must not cover.
			vs := make([]int64, 0, p.NumVertices()-1)
			for _, u := range order[:p.NumVertices()-1] {
				vs = append(vs, int64(u))
			}
			return !p.IsVertexCover(vs)
		}
		k := pl.CoverSize
		cov := make([]int64, 0, k)
		for _, u := range order[:k] {
			cov = append(cov, int64(u))
		}
		if !p.IsVertexCover(cov) {
			t.Logf("seed %d: prefix %v is not a cover", seed, cov)
			return false
		}
		if k > 1 && p.IsVertexCover(cov[:k-1]) {
			t.Logf("seed %d: cover prefix %d not minimal", seed, k)
			return false
		}
		// Free vertices form an independent set.
		for i, a := range pl.Free {
			for _, b := range pl.Free[i+1:] {
				if p.HasEdge(int64(a), int64(b)) {
					t.Logf("seed %d: free vertices %d,%d adjacent", seed, a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCSEIdempotent(t *testing.T) {
	// Running CSE on an already-CSE'd plan changes nothing.
	check := func(seed int64) bool {
		p := randomPattern(seed)
		order := randomOrder(p.NumVertices(), seed+1)
		once, err := Generate(p, order, Options{CSE: true})
		if err != nil {
			return false
		}
		twice, err := Optimize(once, Options{CSE: true})
		if err != nil {
			return false
		}
		return once.String() == twice.String()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyReorderIdempotent(t *testing.T) {
	check := func(seed int64) bool {
		p := randomPattern(seed)
		order := randomOrder(p.NumVertices(), seed+1)
		once, err := Generate(p, order, Options{CSE: true, Reorder: true})
		if err != nil {
			return false
		}
		twice, err := Optimize(once, Options{Reorder: true})
		if err != nil {
			return false
		}
		return once.String() == twice.String()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCostNonNegativeAndMonotone(t *testing.T) {
	st := estimate.UniformStats(10000, 12)
	check := func(seed int64) bool {
		p := randomPattern(seed)
		order := randomOrder(p.NumVertices(), seed+1)
		pl, err := Generate(p, order, OptimizedUncompressed)
		if err != nil {
			return false
		}
		c := EstimateCost(pl, st)
		return c.Communication >= 0 && c.Computation >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
