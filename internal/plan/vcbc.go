package plan

import "fmt"

// compressVCBC rewrites an execution plan to emit VCBC-compressed
// matching results (§IV-B "Support VCBC Compression").
//
// Let k be the smallest prefix of the matching order that forms a vertex
// cover V_c of P. The matches of the first k vertices are the helves. For
// every pattern vertex u_j outside V_c the rewrite deletes the ENU
// instruction of f_j, removes f_j from the filtering conditions of other
// instructions, and replaces f_j in the RES instruction with u_j's
// candidate set, which equals the conditional image set of the VCBC code.
//
// Constraints removed between two free (non-cover) vertices are recorded
// in Plan.FreeOrderConstraints so counting/expansion can re-apply them.
// Injectivity among free vertices is always re-applied at that stage.
func compressVCBC(pl *Plan) error {
	p := pl.Pattern
	n := p.NumVertices()
	k := coverPrefix(pl)
	if k >= n {
		return nil // the whole order is needed: nothing to compress
	}
	pl.Compressed = true
	pl.CoverSize = k

	inCover := make([]bool, n)
	for i := 0; i < k; i++ {
		inCover[pl.Order[i]] = true
	}
	for v := 0; v < n; v++ {
		if !inCover[v] {
			pl.Free = append(pl.Free, v)
		}
	}

	// Record symmetry-breaking constraints between two free vertices:
	// they are about to be dropped from instruction filters.
	for _, c := range p.SymmetryBreaking() {
		a, b := int(c[0]), int(c[1])
		if !inCover[a] && !inCover[b] {
			pl.FreeOrderConstraints = append(pl.FreeOrderConstraints, [2]int{a, b})
		}
	}

	// The RES operand for a free vertex becomes its ENU source set.
	resSource := make(map[int]VarRef, n-k)
	for i := range pl.Instrs {
		in := &pl.Instrs[i]
		if in.Op == OpENU && !inCover[in.Target.Index] {
			resSource[in.Target.Index] = in.Operands[0]
		}
	}
	for _, v := range pl.Free {
		if _, ok := resSource[v]; !ok {
			return fmt.Errorf("plan: no ENU instruction found for free vertex u%d", v+1)
		}
	}

	kept := pl.Instrs[:0]
	for i := range pl.Instrs {
		in := pl.Instrs[i]
		switch {
		case in.Op == OpENU && !inCover[in.Target.Index]:
			continue // delete the ENU of a free vertex
		case in.Op == OpDBQ && !inCover[in.Target.Index]:
			// Cannot occur for a valid cover (free vertices have no later
			// neighbors), but deleting is the safe response.
			continue
		case in.Op == OpRES:
			for j := range in.Operands {
				o := in.Operands[j]
				if o.Kind == VarF && !inCover[o.Index] {
					in.Operands[j] = resSource[o.Index]
				}
			}
		default:
			// Remove filtering conditions referencing free f variables.
			ff := in.Filters[:0]
			for _, f := range in.Filters {
				if !f.refsF() || inCover[f.Vertex] {
					ff = append(ff, f)
				}
			}
			in.Filters = ff
		}
		kept = append(kept, in)
	}
	pl.Instrs = kept
	return nil
}

// coverPrefix returns the smallest k such that the first k vertices of the
// matching order form a vertex cover of the pattern.
func coverPrefix(pl *Plan) int {
	p := pl.Pattern
	n := p.NumVertices()
	inPrefix := make([]bool, n)
	for k := 1; k <= n; k++ {
		inPrefix[pl.Order[k-1]] = true
		covered := true
		p.Graph().Edges(func(u, v int64) bool {
			if !inPrefix[u] && !inPrefix[v] {
				covered = false
				return false
			}
			return true
		})
		if covered {
			return k
		}
	}
	return n
}
