// Dependency policy: stdlib only, enforced by the CI hygiene job
// (`make tidy-check`) and documented in docs/LINTING.md — which also
// records the planned exception (golang.org/x/tools for the analyzer
// framework) and why it is deferred: the build must stay reproducible
// in hermetic, proxy-less environments. A new require line needs a
// matching update to that policy section.
module benu

go 1.22
