module benu

go 1.22
