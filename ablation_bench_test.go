package benu

// Ablation benchmarks: each isolates one design choice of DESIGN.md —
// the triangle cache (Opt-3), its clique generalization, VCBC
// compression, the degree filter, and the DB cache — by running the same
// enumeration with the feature on and off and reporting the feature's
// effect as benchmark metrics.

import (
	"testing"

	"benu/internal/cluster"
	"benu/internal/estimate"
	"benu/internal/exec"
	"benu/internal/gen"
	"benu/internal/graph"
	"benu/internal/kv"
	"benu/internal/plan"
)

// ablationEnv resolves the shared dataset once.
func ablationEnv(b *testing.B) (*graph.Graph, *graph.TotalOrder, *estimate.Stats) {
	b.Helper()
	g := gen.PresetByNameMust("ok").Cached()
	return g, graph.NewTotalOrder(g), estimate.NewStats(g, estimate.MaxMomentDefault)
}

// runPlanLocal executes every task of a plan in-process and returns stats.
func runPlanLocal(b *testing.B, pl *plan.Plan, g *graph.Graph, ord *graph.TotalOrder, opts exec.Options) exec.Stats {
	b.Helper()
	prog, err := exec.Compile(pl)
	if err != nil {
		b.Fatal(err)
	}
	e := exec.NewExecutor(prog, exec.GraphSource{G: g}, g.NumVertices(), ord, opts)
	for v := 0; v < g.NumVertices(); v++ {
		if _, err := e.Run(exec.Task{Start: int64(v)}); err != nil {
			b.Fatal(err)
		}
	}
	return e.Stats()
}

// BenchmarkAblationTriangleCache runs q3 (triangle-rich) with and without
// the triangle cache; the hit count quantifies the redundant triangle
// enumeration Opt-3 removes.
func BenchmarkAblationTriangleCache(b *testing.B) {
	g, ord, st := ablationEnv(b)
	res, err := plan.GenerateBestPlan(gen.Q(3), st, plan.OptimizedUncompressed)
	if err != nil {
		b.Fatal(err)
	}
	var withHits, withoutOps int64
	for i := 0; i < b.N; i++ {
		on := runPlanLocal(b, res.Plan, g, ord, exec.Options{TriangleCacheEntries: 1 << 14})
		off := runPlanLocal(b, res.Plan, g, ord, exec.Options{})
		if on.Matches != off.Matches {
			b.Fatalf("cache changed the result: %d vs %d", on.Matches, off.Matches)
		}
		withHits = on.TriHits
		withoutOps = off.IntOps
	}
	b.ReportMetric(float64(withHits), "tri-hits")
	b.ReportMetric(float64(withoutOps), "int-ops-nocache")
}

// BenchmarkAblationCliqueCache compares the classic triangle cache with
// the clique-cache generalization on q2 (4-clique with a handle) under a
// matching order that enumerates the handle between the clique vertices:
// the 3-clique intersection T_{u1u2u3} then recurs once per handle
// assignment, which only the generalized cache can memoize. (On pure
// clique patterns every cached key occurs exactly once, so neither cache
// helps — caching pays when non-key ENUs interleave between key ENUs.)
func BenchmarkAblationCliqueCache(b *testing.B) {
	g, ord, _ := ablationEnv(b)
	order := []int{0, 1, 4, 2, 3}
	base, err := plan.Generate(gen.Q(2), order, plan.OptimizedUncompressed)
	if err != nil {
		b.Fatal(err)
	}
	cliqueOpts := plan.OptimizedUncompressed
	cliqueOpts.CliqueCache = true
	wide, err := plan.Generate(gen.Q(2), order, cliqueOpts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tri := runPlanLocal(b, base, g, ord, exec.Options{TriangleCacheEntries: 1 << 14})
		cl := runPlanLocal(b, wide, g, ord, exec.Options{TriangleCacheEntries: 1 << 14})
		if tri.Matches != cl.Matches {
			b.Fatalf("clique cache changed the result: %d vs %d", cl.Matches, tri.Matches)
		}
		b.ReportMetric(float64(tri.TriHits), "hits-triangle-only")
		b.ReportMetric(float64(cl.TriHits), "hits-clique-cache")
	}
}

// BenchmarkAblationVCBC compares compressed and uncompressed result sizes
// on q4 — the compression ratio the VCBC rewrite buys.
func BenchmarkAblationVCBC(b *testing.B) {
	g, ord, st := ablationEnv(b)
	comp, err := plan.GenerateBestPlan(gen.Q(4), st, plan.AllOptions)
	if err != nil {
		b.Fatal(err)
	}
	raw, err := plan.GenerateBestPlan(gen.Q(4), st, plan.OptimizedUncompressed)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		c := runPlanLocal(b, comp.Plan, g, ord, exec.Options{TriangleCacheEntries: 1 << 14})
		r := runPlanLocal(b, raw.Plan, g, ord, exec.Options{TriangleCacheEntries: 1 << 14})
		if c.Matches != r.Matches {
			b.Fatalf("compression changed the result: %d vs %d", c.Matches, r.Matches)
		}
		if c.ResultSize > 0 {
			b.ReportMetric(float64(r.ResultSize)/float64(c.ResultSize), "compression-x")
		}
	}
}

// BenchmarkAblationDegreeFilter measures the degree filter's pruning on a
// hub-and-satellite graph where it shines.
func BenchmarkAblationDegreeFilter(b *testing.B) {
	bld := graph.NewBuilder(2000)
	for i := int64(0); i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			bld.AddEdge(i, j)
		}
	}
	for i := int64(20); i < 2000; i++ {
		bld.AddEdge(i%20, i)
	}
	g := bld.Build()
	ord := graph.NewTotalOrder(g)
	p := gen.Clique(4)
	order := []int{0, 1, 2, 3}
	base, err := plan.Generate(p, order, plan.OptimizedUncompressed)
	if err != nil {
		b.Fatal(err)
	}
	fOpts := plan.OptimizedUncompressed
	fOpts.DegreeFilter = true
	filt, err := plan.Generate(p, order, fOpts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		off := runPlanLocal(b, base, g, ord, exec.Options{})
		on := runPlanLocal(b, filt, g, ord, exec.Options{DegreeOf: g.Degree})
		if off.Matches != on.Matches {
			b.Fatalf("degree filter changed the result")
		}
	}
}

// BenchmarkAblationDBCache runs q4 on the cluster with and without the DB
// cache and reports the communication saved.
func BenchmarkAblationDBCache(b *testing.B) {
	g, ord, st := ablationEnv(b)
	res, err := plan.GenerateBestPlan(gen.Q(4), st, plan.AllOptions)
	if err != nil {
		b.Fatal(err)
	}
	store := kv.NewLocal(g)
	for i := 0; i < b.N; i++ {
		on := cluster.Defaults(g)
		off := cluster.Defaults(g)
		off.CacheBytes = 0
		ron, err := cluster.Run(res.Plan, store, ord, g.Degree, on)
		if err != nil {
			b.Fatal(err)
		}
		roff, err := cluster.Run(res.Plan, store, ord, g.Degree, off)
		if err != nil {
			b.Fatal(err)
		}
		if ron.Matches != roff.Matches {
			b.Fatal("cache changed the result")
		}
		b.ReportMetric(float64(roff.DBQueries)/float64(ron.DBQueries), "query-reduction-x")
	}
}
