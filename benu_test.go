package benu

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"benu/internal/exec"
	"benu/internal/graph"
)

func TestFacadeCountMatchesBruteForce(t *testing.T) {
	g, err := SyntheticGraph("as")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"triangle", "q1", "q4"} {
		p, err := PatternByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Count(p, g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if want := BruteForceCount(p, g); res.Matches != want {
			t.Errorf("%s: Count = %d, brute force = %d", name, res.Matches, want)
		}
	}
}

func TestFacadeEnumerate(t *testing.T) {
	g := NewGraph(4, [][2]int64{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen [][]int64
	res, err := Enumerate(p, g, nil, func(m []int64) bool {
		mu.Lock()
		seen = append(seen, append([]int64(nil), m...))
		mu.Unlock()
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 4 || len(seen) != 4 { // K4 has 4 triangles
		t.Fatalf("matches = %d, emitted = %d, want 4", res.Matches, len(seen))
	}
	// Every emitted match is a real triangle.
	for _, m := range seen {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if !g.HasEdge(m[i], m[j]) {
					t.Errorf("emitted non-triangle %v", m)
				}
			}
		}
	}
}

func TestFacadeEnumerateCodes(t *testing.T) {
	g, err := SyntheticGraph("as")
	if err != nil {
		t.Fatal(err)
	}
	p, err := PatternByName("q4")
	if err != nil {
		t.Fatal(err)
	}
	ord := NewOrder(g)
	var mu sync.Mutex
	var expanded int64
	pl, res, err := EnumerateCodes(p, g, nil, func(c *Code) bool {
		mu.Lock()
		defer mu.Unlock()
		// Count within the callback (constraints come from the plan —
		// closed over after the call returns, so recount below instead).
		_ = c
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Re-run with counting now that the plan (and its constraints) are
	// in hand.
	_, res2, err := EnumerateCodes(p, g, nil, func(c *Code) bool {
		mu.Lock()
		expanded += c.Count(pl.FreeOrderConstraints, ord)
		mu.Unlock()
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if expanded != res.Matches || res2.Matches != res.Matches {
		t.Errorf("expanded %d, results %d / %d", expanded, res.Matches, res2.Matches)
	}
}

func TestFacadeLabeled(t *testing.T) {
	base := NewGraph(3, [][2]int64{{0, 1}, {1, 2}})
	g, err := base.WithVertexLabels([]int64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewLabeledPattern("e", 2, [][2]int64{{0, 1}}, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Count(p, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 2 {
		t.Errorf("labeled count = %d, want 2", res.Matches)
	}
}

func TestFacadeDistributedStore(t *testing.T) {
	g, err := SyntheticGraph("as")
	if err != nil {
		t.Fatal(err)
	}
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	servers, addrs, err := ServeGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	client, err := DialStore(addrs, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	pl, err := PlanBest(p, g, DefaultPlanOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClusterConfig(g)
	res, err := RunOnStore(pl, client, NewOrder(g), g.Degree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := BruteForceCount(p, g); res.Matches != want {
		t.Errorf("distributed count %d, want %d", res.Matches, want)
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := NewGraph(3, [][2]int64{{0, 1}, {1, 2}})
	var sb strings.Builder
	if err := WriteGraph(&sb, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 2 {
		t.Errorf("round trip lost edges")
	}
}

func TestFacadeDelta(t *testing.T) {
	g := NewGraph(4, [][2]int64{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeltaEnumerator(p)
	if err != nil {
		t.Fatal(err)
	}
	store := NewMutableStore(g)
	// Inserting (0, 3) closes the triangle {0, 2, 3}.
	ident := graph.IdentityOrder(6)
	store.AddEdge(0, 3)
	n, err := d.Count(exec.StoreSource{S: store}, store.NumVertices(), ident, 0, 3, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("delta = %d, want 1", n)
	}
}

// Example demonstrates counting a pattern in a tiny data graph.
func Example() {
	// The 4-clique contains four triangles.
	g := NewGraph(4, [][2]int64{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	p, _ := PatternByName("triangle")
	res, _ := Count(p, g, nil)
	fmt.Println(res.Matches)
	// Output: 4
}

// ExampleEnumerate demonstrates streaming matches.
func ExampleEnumerate() {
	g := NewGraph(4, [][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	p, _ := PatternByName("square")
	var matches [][]int64
	var mu sync.Mutex
	Enumerate(p, g, nil, func(m []int64) bool {
		mu.Lock()
		matches = append(matches, append([]int64(nil), m...))
		mu.Unlock()
		return true
	})
	sort.Slice(matches, func(i, j int) bool { return matches[i][0] < matches[j][0] })
	for _, m := range matches {
		fmt.Println(m)
	}
	// Output: [0 1 2 3]
}
