// Command benu-gen generates synthetic data graphs — the scaled dataset
// presets or custom power-law / Erdős–Rényi graphs — as edge-list files.
//
// Usage:
//
//	benu-gen -preset ok -o ok.txt
//	benu-gen -n 10000 -k 5 -triad 0.4 -seed 7 -o pl.txt
//	benu-gen -er -n 1000 -m 5000 -o er.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"benu/internal/gen"
	"benu/internal/graph"
)

// genConfig mirrors the command-line flags.
type genConfig struct {
	preset   string
	n, k, m  int
	triad    float64
	er       bool
	seed     int64
	outPath  string
	stats    bool
	statsOut io.Writer
}

func main() {
	var cfg genConfig
	flag.StringVar(&cfg.preset, "preset", "", "dataset preset to materialize (as, lj, ok, uk, fs)")
	flag.IntVar(&cfg.n, "n", 1000, "vertex count (custom graphs)")
	flag.IntVar(&cfg.k, "k", 4, "edges per vertex (power-law)")
	flag.Float64Var(&cfg.triad, "triad", 0.4, "triad-formation probability (power-law)")
	flag.IntVar(&cfg.m, "m", 0, "edge count (Erdős–Rényi; requires -er)")
	flag.BoolVar(&cfg.er, "er", false, "generate Erdős–Rényi instead of power-law")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed")
	flag.StringVar(&cfg.outPath, "o", "-", "output file (default stdout)")
	flag.BoolVar(&cfg.stats, "stats", false, "print graph statistics to stderr")
	flag.Parse()
	cfg.statsOut = os.Stderr

	w := io.Writer(os.Stdout)
	if cfg.outPath != "-" {
		f, err := os.Create(cfg.outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := generate(cfg, w); err != nil {
		fatal(err)
	}
}

// generate builds the requested graph and writes it as an edge list.
func generate(cfg genConfig, w io.Writer) error {
	var g *graph.Graph
	switch {
	case cfg.preset != "":
		preset, err := gen.PresetByName(cfg.preset)
		if err != nil {
			return err
		}
		g = preset.Generate()
	case cfg.er:
		if cfg.m <= 0 {
			return fmt.Errorf("-er requires -m > 0")
		}
		g = gen.ErdosRenyi(cfg.n, cfg.m, cfg.seed)
	default:
		g = gen.PowerLaw(gen.PowerLawConfig{N: cfg.n, EdgesPer: cfg.k, Triad: cfg.triad, Seed: cfg.seed})
	}
	if cfg.stats && cfg.statsOut != nil {
		fmt.Fprintf(cfg.statsOut, "N=%d M=%d maxdeg=%d triangles=%d size=%dB\n",
			g.NumVertices(), g.NumEdges(), g.MaxDegree(), graph.CountTriangles(g), g.SizeBytes())
	}
	return graph.WriteEdgeList(w, g)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benu-gen:", err)
	os.Exit(1)
}
