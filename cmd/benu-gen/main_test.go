package main

import (
	"bytes"
	"strings"
	"testing"

	"benu/internal/graph"
)

func TestGeneratePreset(t *testing.T) {
	var out, stats bytes.Buffer
	err := generate(genConfig{preset: "as", stats: true, statsOut: &stats}, &out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadEdgeList(&out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Errorf("preset as: N = %d", g.NumVertices())
	}
	if !strings.Contains(stats.String(), "maxdeg=") {
		t.Errorf("stats output missing: %q", stats.String())
	}
}

func TestGenerateCustom(t *testing.T) {
	var out bytes.Buffer
	if err := generate(genConfig{n: 200, k: 3, triad: 0.3, seed: 4}, &out); err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadEdgeList(&out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 200 || g.NumEdges() == 0 {
		t.Errorf("power-law graph shape: %v", g)
	}

	out.Reset()
	if err := generate(genConfig{er: true, n: 100, m: 250, seed: 4}, &out); err != nil {
		t.Fatal(err)
	}
	g2, err := graph.ReadEdgeList(&out)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 250 {
		t.Errorf("ER edges = %d", g2.NumEdges())
	}
}

func TestGenerateErrors(t *testing.T) {
	var out bytes.Buffer
	if err := generate(genConfig{preset: "nope"}, &out); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := generate(genConfig{er: true, n: 10}, &out); err == nil {
		t.Error("-er without -m accepted")
	}
}
