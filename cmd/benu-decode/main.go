// Command benu-decode reads a VCBC result stream written by
// `benu -output` and counts or expands the compressed matches.
//
// Counting and expansion need the total order ≺ on the data graph (the
// free-vertex constraints compare under it), so the same graph must be
// supplied: either the preset name or the edge-list file used for the
// enumeration.
//
// Usage:
//
//	benu -pattern q4 -preset ok -output q4.vcbc
//	benu-decode -in q4.vcbc -preset ok            # count expansions
//	benu-decode -in q4.vcbc -preset ok -expand    # print full matches
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"benu/internal/gen"
	"benu/internal/graph"
	"benu/internal/vcbc"
)

func main() {
	var (
		inPath     = flag.String("in", "", "VCBC stream file (required)")
		presetName = flag.String("preset", "", "dataset preset the stream was produced against")
		graphPath  = flag.String("graph", "", "edge-list file the stream was produced against (overrides -preset)")
		expand     = flag.Bool("expand", false, "print every expanded match instead of counting")
		limit      = flag.Int64("limit", 0, "stop after this many expanded matches (0 = all)")
	)
	flag.Parse()
	if err := run(*inPath, *presetName, *graphPath, *expand, *limit, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benu-decode:", err)
		os.Exit(1)
	}
}

func run(inPath, presetName, graphPath string, expand bool, limit int64, out io.Writer) error {
	if inPath == "" {
		return fmt.Errorf("-in is required")
	}
	var g *graph.Graph
	switch {
	case graphPath != "":
		f, err := os.Open(graphPath)
		if err != nil {
			return err
		}
		g, err = graph.ReadEdgeList(f)
		f.Close()
		if err != nil {
			return err
		}
	case presetName != "":
		preset, err := gen.PresetByName(presetName)
		if err != nil {
			return err
		}
		g = preset.Cached()
	default:
		return fmt.Errorf("need -preset or -graph to reconstruct the total order")
	}
	ord := graph.NewTotalOrder(g)

	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := vcbc.NewReader(f)
	if err != nil {
		return err
	}
	n := len(r.Cover()) + len(r.Free())

	w := bufio.NewWriter(out)
	defer w.Flush()

	var codes, matches int64
	for {
		c, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		codes++
		if !expand {
			matches += c.Count(r.Constraints(), ord)
			continue
		}
		done := c.Expand(n, r.Constraints(), ord, func(m []int64) bool {
			matches++
			for i, v := range m {
				if i > 0 {
					fmt.Fprint(w, " ")
				}
				fmt.Fprint(w, v)
			}
			fmt.Fprintln(w)
			return limit <= 0 || matches < limit
		})
		if !done {
			break
		}
	}
	fmt.Fprintf(w, "# %d codes, %d matches\n", codes, matches)
	return nil
}
