package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"benu/internal/cluster"
	"benu/internal/estimate"
	"benu/internal/gen"
	"benu/internal/graph"
	"benu/internal/kv"
	"benu/internal/plan"
	"benu/internal/vcbc"
)

// writeStream enumerates q4 on the as preset into a VCBC stream file and
// returns the path plus the true match count.
func writeStream(t *testing.T) (string, int64) {
	t.Helper()
	g := gen.PresetByNameMust("as").Cached()
	ord := graph.NewTotalOrder(g)
	st := estimate.NewStats(g, estimate.MaxMomentDefault)
	best, err := plan.GenerateBestPlan(gen.Q(4), st, plan.AllOptions)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "q4.vcbc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cover := make([]int, 0, best.Plan.CoverSize)
	inFree := map[int]bool{}
	for _, v := range best.Plan.Free {
		inFree[v] = true
	}
	for v := 0; v < best.Plan.Pattern.NumVertices(); v++ {
		if !inFree[v] {
			cover = append(cover, v)
		}
	}
	sw, err := vcbc.NewWriter(f, cover, best.Plan.Free, best.Plan.FreeOrderConstraints)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Defaults(g)
	cfg.Workers, cfg.ThreadsPerWorker = 1, 1 // serialize writes
	cfg.EmitCode = func(c *vcbc.Code) bool { return sw.Write(c) == nil }
	res, err := cluster.Run(best.Plan, kv.NewLocal(g), ord, g.Degree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path, res.Matches
}

func TestDecodeCount(t *testing.T) {
	path, want := writeStream(t)
	var out bytes.Buffer
	if err := run(path, "as", "", false, 0, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "matches") {
		t.Fatalf("output: %q", out.String())
	}
	// The footer carries the counted total.
	var codes, matches int64
	if _, err := fmtSscan(out.String(), &codes, &matches); err != nil {
		t.Fatal(err)
	}
	if matches != want {
		t.Errorf("decoded count %d, want %d", matches, want)
	}
}

func TestDecodeExpand(t *testing.T) {
	path, want := writeStream(t)
	var out bytes.Buffer
	if err := run(path, "as", "", true, 0, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// Last line is the footer; the rest are matches.
	if int64(len(lines)-1) != want {
		t.Errorf("expanded %d matches, want %d", len(lines)-1, want)
	}
}

func TestDecodeErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run("", "as", "", false, 0, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run("/no/such/file", "as", "", false, 0, &out); err == nil {
		t.Error("missing file accepted")
	}
	path, _ := writeStream(t)
	if err := run(path, "", "", false, 0, &out); err == nil {
		t.Error("missing graph source accepted")
	}
}

// fmtSscan parses the "# N codes, M matches" footer.
func fmtSscan(s string, codes, matches *int64) (int, error) {
	i := strings.LastIndex(s, "#")
	var c, m int64
	n, err := sscanFooter(s[i:], &c, &m)
	*codes, *matches = c, m
	return n, err
}

func sscanFooter(s string, c, m *int64) (int, error) {
	var n int
	var err error
	n, err = fmt.Sscanf(s, "# %d codes, %d matches", c, m)
	return n, err
}
