// Command benu-master is the control-plane master of a networked BENU
// deployment: it loads (or generates) a data graph, plans the pattern,
// serves the graph's adjacency partitions over TCP (internal/kv), and
// serves the resulting task queue to benu-worker processes over the
// Sched wire protocol (internal/cluster/sched) — pull-based scheduling
// with work stealing and lease-expiry task re-execution.
//
// Usage:
//
//	benu-master -pattern q4 -preset as -listen 127.0.0.1:7077
//	benu-worker -master 127.0.0.1:7077 -threads 4   (on each worker machine)
//
// The master exits once every task has committed, printing the match
// count and scheduling summary. Workers that join late, die mid-task,
// or straggle are handled by the protocol: the run completes as long as
// at least one worker survives.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"benu/internal/cluster/sched"
	"benu/internal/estimate"
	"benu/internal/gen"
	"benu/internal/graph"
	"benu/internal/kv"
	"benu/internal/obs"
	"benu/internal/plan"
)

func main() {
	var (
		patternName  = flag.String("pattern", "triangle", "pattern: triangle, square, chordal-square, q1..q9, cliqueK, pathK, cycleK, starK, demo")
		graphPath    = flag.String("graph", "", "data graph edge-list file (overrides -preset)")
		presetName   = flag.String("preset", "as", "synthetic dataset preset: as, lj, ok, uk, fs")
		listen       = flag.String("listen", "127.0.0.1:7077", "address to serve the task queue on")
		partitions   = flag.Int("store-partitions", 2, "adjacency storage nodes served from this process")
		tau          = flag.Int("tau", 500, "task splitting degree threshold (0 = off)")
		uncompressed = flag.Bool("uncompressed", false, "disable VCBC compression")
		degreeFilter = flag.Bool("degree-filter", false, "add degree filtering conditions (§IV-A extension)")
		retry        = flag.Int("retry", 2, "task re-executions per failure or expired lease (0 = off)")
		lease        = flag.Duration("lease", 3*time.Second, "heartbeat silence tolerated before a worker's leases expire")
		metrics      = flag.Bool("metrics", false, "print the run's metrics snapshot (see docs/METRICS.md)")
		verbose      = flag.Bool("v", false, "print the execution plan")
	)
	flag.Parse()

	if err := run(runConfig{
		pattern: *patternName, graphPath: *graphPath, preset: *presetName,
		listen: *listen, partitions: *partitions, tau: *tau,
		uncompressed: *uncompressed, degreeFilter: *degreeFilter,
		retry: *retry, lease: *lease, metrics: *metrics, verbose: *verbose,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "benu-master:", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed command-line options.
type runConfig struct {
	pattern, graphPath, preset string
	listen                     string
	partitions                 int
	tau                        int
	uncompressed               bool
	degreeFilter               bool
	retry                      int
	lease                      time.Duration
	metrics                    bool
	verbose                    bool
}

// deployment is a started master plus the storage nodes it serves,
// separated from run so the end-to-end test can join in-process workers
// before waiting.
type deployment struct {
	master  *sched.Master
	servers []*kv.Server
	reg     *obs.Registry
}

func (d *deployment) close() {
	d.master.Close()
	for _, s := range d.servers {
		s.Close()
	}
}

func run(rc runConfig) error {
	d, err := start(rc)
	if err != nil {
		return err
	}
	defer d.close()
	fmt.Printf("master: serving tasks on %s (%d storage nodes)\n", d.master.Addr(), len(d.servers))

	res, err := d.master.Wait(nil)
	if err != nil {
		return err
	}
	// Let parked workers pick up their Done replies before the deferred
	// close severs connections — otherwise they exit on an EOF.
	d.master.Drain(2 * time.Second)
	fmt.Printf("matches=%d tasks=%d (split=%d) workers=%d steals=%d expired=%d retried=%d duplicates=%d wall=%s\n",
		res.Matches, res.Tasks, res.SplitTasks, res.WorkersJoined,
		res.Steals, res.LeasesExpired, res.TasksRetried, res.DuplicateReports,
		res.Wall.Round(time.Millisecond))
	if rc.metrics {
		fmt.Print(d.reg.Snapshot().Text())
	}
	return nil
}

// start loads the graph, plans the pattern, serves the storage nodes,
// and starts the master.
func start(rc runConfig) (*deployment, error) {
	p, err := gen.PatternByName(rc.pattern)
	if err != nil {
		return nil, err
	}
	var g *graph.Graph
	if rc.graphPath != "" {
		f, err := os.Open(rc.graphPath)
		if err != nil {
			return nil, err
		}
		g, err = graph.ReadEdgeList(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	} else {
		preset, err := gen.PresetByName(rc.preset)
		if err != nil {
			return nil, err
		}
		g = preset.Generate()
	}
	fmt.Printf("data graph: N=%d M=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())

	opts := plan.AllOptions
	opts.VCBC = !rc.uncompressed
	opts.DegreeFilter = rc.degreeFilter
	st := estimate.NewStats(g, estimate.MaxMomentDefault)
	best, err := plan.GenerateBestPlan(p, st, opts)
	if err != nil {
		return nil, err
	}
	if rc.verbose {
		fmt.Println(best.Plan)
	}

	if rc.partitions <= 0 {
		rc.partitions = 1
	}
	servers, addrs, err := kv.ServeGraph(g, rc.partitions)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	m, err := sched.StartMaster(rc.listen, sched.MasterConfig{
		Plan:          best.Plan,
		NumVertices:   g.NumVertices(),
		Ord:           graph.NewTotalOrder(g),
		Degree:        g.Degree,
		LabelOf:       g.Label,
		Tau:           rc.tau,
		TaskRetries:   rc.retry,
		LeaseDuration: rc.lease,
		StoreAddrs:    addrs,
		Obs:           reg,
	})
	if err != nil {
		for _, s := range servers {
			s.Close()
		}
		return nil, err
	}
	return &deployment{master: m, servers: servers, reg: reg}, nil
}
