// Command benu-master is the control-plane master of a networked BENU
// deployment: it loads (or generates) a data graph, plans the pattern,
// serves the graph's adjacency partitions over TCP (internal/kv), and
// serves the resulting task queue to benu-worker processes over the
// Sched wire protocol (internal/cluster/sched) — pull-based scheduling
// with work stealing and lease-expiry task re-execution.
//
// Usage:
//
//	benu-master -pattern q4 -preset as -listen 127.0.0.1:7077
//	benu-worker -master 127.0.0.1:7077 -threads 4   (on each worker machine)
//
// The master exits once every task has committed, printing the match
// count and scheduling summary. Workers that join late, die mid-task,
// or straggle are handled by the protocol: the run completes as long as
// at least one worker survives.
//
// With -journal the master writes a crash-consistent journal of the job
// and every committed task, so a master killed mid-run can be restarted
// with the same flags and journal path: it replays the completed work,
// bumps the epoch to fence the dead incarnation's stragglers, and
// serves only the remaining tasks. Pair it with -store-listen so the
// restarted process serves the adjacency partitions on the same
// addresses the surviving workers already dialed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"benu/internal/cluster/sched"
	"benu/internal/estimate"
	"benu/internal/gen"
	"benu/internal/graph"
	"benu/internal/kv"
	"benu/internal/obs"
	"benu/internal/plan"
)

func main() {
	var (
		patternName  = flag.String("pattern", "triangle", "pattern: triangle, square, chordal-square, q1..q9, cliqueK, pathK, cycleK, starK, demo")
		graphPath    = flag.String("graph", "", "data graph edge-list file (overrides -preset)")
		presetName   = flag.String("preset", "as", "synthetic dataset preset: as, lj, ok, uk, fs")
		listen       = flag.String("listen", "127.0.0.1:7077", "address to serve the task queue on")
		journalPath  = flag.String("journal", "", "crash-recovery journal path; reusing a dead master's journal resumes its run")
		partitions   = flag.Int("store-partitions", 2, "adjacency storage nodes served from this process")
		storeListen  = flag.String("store-listen", "", "base host:port for the storage nodes (partition i served on port+i); empty picks ephemeral ports")
		tau          = flag.Int("tau", 500, "task splitting degree threshold (0 = off)")
		uncompressed = flag.Bool("uncompressed", false, "disable VCBC compression")
		degreeFilter = flag.Bool("degree-filter", false, "add degree filtering conditions (§IV-A extension)")
		retry        = flag.Int("retry", 2, "task re-executions per failure or expired lease (0 = off)")
		lease        = flag.Duration("lease", 3*time.Second, "heartbeat silence tolerated before a worker's leases expire")
		metrics      = flag.Bool("metrics", false, "print the run's metrics snapshot (see docs/METRICS.md)")
		verbose      = flag.Bool("v", false, "print the execution plan")
	)
	flag.Parse()

	if err := run(runConfig{
		pattern: *patternName, graphPath: *graphPath, preset: *presetName,
		listen: *listen, journal: *journalPath,
		partitions: *partitions, storeListen: *storeListen, tau: *tau,
		uncompressed: *uncompressed, degreeFilter: *degreeFilter,
		retry: *retry, lease: *lease, metrics: *metrics, verbose: *verbose,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "benu-master:", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed command-line options.
type runConfig struct {
	pattern, graphPath, preset string
	listen                     string
	journal                    string
	partitions                 int
	storeListen                string
	tau                        int
	uncompressed               bool
	degreeFilter               bool
	retry                      int
	lease                      time.Duration
	metrics                    bool
	verbose                    bool
}

// deployment is a started master plus the storage nodes it serves,
// separated from run so the end-to-end test can join in-process workers
// before waiting.
type deployment struct {
	master  *sched.Master
	servers []*kv.Server
	reg     *obs.Registry
}

func (d *deployment) close() {
	d.master.Close()
	for _, s := range d.servers {
		s.Close()
	}
}

func run(rc runConfig) error {
	d, err := start(rc)
	if err != nil {
		return err
	}
	defer d.close()
	fmt.Printf("master: serving tasks on %s (%d storage nodes, epoch %d)\n",
		d.master.Addr(), len(d.servers), d.master.Result().Epoch)
	if n := d.master.Result().Replayed; n > 0 {
		fmt.Printf("master: resumed from %s (%d tasks already committed)\n", rc.journal, n)
	}

	// A first SIGINT/SIGTERM shuts down gracefully: every committed task
	// is already fsync'd to the journal, so there is nothing to flush —
	// just stop serving and tell the operator how to resume. A second
	// signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := d.master.Wait(ctx)
	if ctx.Err() != nil {
		stop()
		if rc.journal != "" {
			return fmt.Errorf("interrupted; resume with -journal %s", rc.journal)
		}
		return fmt.Errorf("interrupted (no -journal, run not resumable)")
	}
	if err != nil {
		return err
	}
	// Let parked workers pick up their Done replies before the deferred
	// close severs connections — otherwise they exit on an EOF.
	d.master.Drain(2 * time.Second)
	fmt.Printf("matches=%d tasks=%d (split=%d, replayed=%d) workers=%d steals=%d expired=%d retried=%d duplicates=%d stale=%d wall=%s\n",
		res.Matches, res.Tasks, res.SplitTasks, res.Replayed, res.WorkersJoined,
		res.Steals, res.LeasesExpired, res.TasksRetried, res.DuplicateReports,
		res.StaleCalls, res.Wall.Round(time.Millisecond))
	if rc.metrics {
		fmt.Print(d.reg.Snapshot().Text())
	}
	return nil
}

// start loads the graph, plans the pattern, serves the storage nodes,
// and starts the master.
func start(rc runConfig) (*deployment, error) {
	p, err := gen.PatternByName(rc.pattern)
	if err != nil {
		return nil, err
	}
	var g *graph.Graph
	if rc.graphPath != "" {
		f, err := os.Open(rc.graphPath)
		if err != nil {
			return nil, err
		}
		g, err = graph.ReadEdgeList(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	} else {
		preset, err := gen.PresetByName(rc.preset)
		if err != nil {
			return nil, err
		}
		g = preset.Generate()
	}
	fmt.Printf("data graph: N=%d M=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())

	opts := plan.AllOptions
	opts.VCBC = !rc.uncompressed
	opts.DegreeFilter = rc.degreeFilter
	st := estimate.NewStats(g, estimate.MaxMomentDefault)
	best, err := plan.GenerateBestPlan(p, st, opts)
	if err != nil {
		return nil, err
	}
	if rc.verbose {
		fmt.Println(best.Plan)
	}

	if rc.partitions <= 0 {
		rc.partitions = 1
	}
	servers, addrs, err := serveStores(g, rc.partitions, rc.storeListen)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	m, err := sched.StartMaster(rc.listen, sched.MasterConfig{
		Plan:          best.Plan,
		NumVertices:   g.NumVertices(),
		Ord:           graph.NewTotalOrder(g),
		Degree:        g.Degree,
		LabelOf:       g.Label,
		Tau:           rc.tau,
		TaskRetries:   rc.retry,
		LeaseDuration: rc.lease,
		StoreAddrs:    addrs,
		JournalPath:   rc.journal,
		Obs:           reg,
	})
	if err != nil {
		for _, s := range servers {
			s.Close()
		}
		return nil, err
	}
	return &deployment{master: m, servers: servers, reg: reg}, nil
}

// serveStores shards g over p storage nodes. With base == "" they take
// ephemeral loopback ports (kv.ServeGraph); with base == "host:port"
// partition i is served on port+i, so a restarted master reappears on
// the addresses its surviving workers already dialed — kv clients
// redial severed pool connections, crash recovery depends on it.
func serveStores(g *graph.Graph, p int, base string) ([]*kv.Server, []string, error) {
	if base == "" {
		return kv.ServeGraph(g, p)
	}
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, nil, fmt.Errorf("-store-listen: %w", err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, nil, fmt.Errorf("-store-listen: bad port %q", portStr)
	}
	var servers []*kv.Server
	var addrs []string
	for i := 0; i < p; i++ {
		store := kv.NewMapStore(kv.Shard(g, i, p), g.NumVertices())
		srv, err := kv.Serve(net.JoinHostPort(host, strconv.Itoa(port+i)), store)
		if err != nil {
			for _, s := range servers {
				s.Close()
			}
			return nil, nil, err
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	return servers, addrs, nil
}
