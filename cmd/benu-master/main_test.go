package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"benu/internal/cluster/sched"
	"benu/internal/gen"
	"benu/internal/graph"
)

// TestMasterEndToEnd runs the binary's own start path — graph from an
// edge-list file, plan generation, kv storage nodes, task queue — and
// joins two workers that dial everything over loopback TCP, exactly as
// benu-worker would.
func TestMasterEndToEnd(t *testing.T) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 200, EdgesPer: 3, Triad: 0.4, Seed: 11})
	path := filepath.Join(t.TempDir(), "edges.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.EdgeList() {
		fmt.Fprintf(f, "%d %d\n", e[0], e[1])
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	want := graph.RefCount(gen.Q(4), g, graph.NewTotalOrder(g))

	d, err := start(runConfig{
		pattern:    "q4",
		graphPath:  path,
		listen:     "127.0.0.1:0",
		partitions: 2,
		tau:        500,
		retry:      2,
		lease:      3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()

	var workers []*sched.Worker
	for i := 0; i < 2; i++ {
		w, err := sched.StartWorker(d.master.Addr(), sched.WorkerConfig{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	res, err := d.master.Wait(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		if err := w.Wait(); err != nil {
			t.Errorf("worker %d exit: %v", w.ID(), err)
		}
	}
	if res.Matches != want {
		t.Errorf("matches = %d, want %d", res.Matches, want)
	}
	if res.Stats.DBQueries == 0 {
		t.Error("no DB queries recorded: workers did not dial the storage nodes")
	}
}
