// Command benu runs a distributed subgraph enumeration end to end: it
// loads (or generates) a data graph, plans the pattern, executes the plan
// on the simulated cluster, and reports counts plus cost metrics.
//
// Usage:
//
//	benu -pattern q4 -preset ok
//	benu -pattern clique4 -graph edges.txt -workers 8 -threads 4
//	benu -pattern triangle -preset as -uncompressed -v
//	benu -pattern q4 -preset ok -metrics
//	benu -pattern square -preset as -output results.vcbc
//	benu -pattern q4 -preset as -csr as.csr   # adjacency from benu-store CSR files
//
// -output streams the results to a file: a VCBC-compressed stream for
// compressed plans (count or expand it with benu-decode), plain
// space-separated matches otherwise. -metrics prints the observability
// snapshot of the run — every counter, gauge, and histogram the runtime
// collected (see docs/METRICS.md); -metrics-json writes the same
// snapshot as JSON to a file.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"benu/internal/cluster"
	"benu/internal/estimate"
	"benu/internal/gen"
	"benu/internal/graph"
	"benu/internal/kv"
	"benu/internal/obs"
	"benu/internal/plan"
	"benu/internal/resilience"
	"benu/internal/vcbc"
)

func main() {
	var (
		patternName  = flag.String("pattern", "triangle", "pattern: triangle, square, chordal-square, q1..q9, cliqueK, pathK, cycleK, starK, demo")
		graphPath    = flag.String("graph", "", "data graph edge-list file (overrides -preset)")
		presetName   = flag.String("preset", "ok", "synthetic dataset preset: as, lj, ok, uk, fs")
		workers      = flag.Int("workers", 4, "simulated worker machines")
		threads      = flag.Int("threads", 4, "working threads per machine")
		cacheRel     = flag.Float64("cache", 1.0, "DB cache capacity as a fraction of the data graph size")
		tau          = flag.Int("tau", 500, "task splitting degree threshold (0 = off)")
		uncompressed = flag.Bool("uncompressed", false, "disable VCBC compression")
		degreeFilter = flag.Bool("degree-filter", false, "add degree filtering conditions (§IV-A extension)")
		cliqueCache  = flag.Bool("clique-cache", false, "generalize the triangle cache to pattern cliques (§IV-B extension)")
		prefetch     = flag.Bool("prefetch", false, "batch-prefetch ENU candidate adjacency before enumerating")
		pfWorkers    = flag.Int("prefetch-workers", 0, "async prefetch goroutines per machine (0 = synchronous inline)")
		compact      = flag.Bool("compact", false, "use the compact varint-delta adjacency encoding in cache and fetches")
		csrPath      = flag.String("csr", "", "serve adjacency from mmap'd CSR file(s) built by benu-store: a single file, or the prefix of <path>.<part> shards")
		output       = flag.String("output", "", "write results to this file (VCBC stream for compressed plans, text otherwise; decode with benu-decode)")
		metrics      = flag.Bool("metrics", false, "print the run's metrics snapshot (see docs/METRICS.md)")
		metricsJSON  = flag.String("metrics-json", "", "write the run's metrics snapshot as JSON to this file")
		retry        = flag.Int("retry", 2, "fault tolerance: store-call retries and task re-executions per failure (0 = off)")
		deadline     = flag.Duration("deadline", 0, "per-store-call deadline, e.g. 500ms (0 = none)")
		failFast     = flag.Bool("failfast", false, "fail on the first fault instead of retrying (overrides -retry)")
		verbose      = flag.Bool("v", false, "print the execution plan and per-worker stats")
	)
	flag.Parse()

	if err := run(runConfig{
		pattern: *patternName, graphPath: *graphPath, preset: *presetName,
		workers: *workers, threads: *threads, cacheRel: *cacheRel, tau: *tau,
		uncompressed: *uncompressed, degreeFilter: *degreeFilter,
		cliqueCache: *cliqueCache, output: *output, verbose: *verbose,
		metrics: *metrics, metricsJSON: *metricsJSON,
		prefetch: *prefetch, prefetchWorkers: *pfWorkers, compact: *compact,
		csr:   *csrPath,
		retry: *retry, deadline: *deadline, failFast: *failFast,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "benu:", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed command-line options.
type runConfig struct {
	pattern, graphPath, preset string
	workers, threads, tau      int
	cacheRel                   float64
	uncompressed               bool
	degreeFilter, cliqueCache  bool
	output                     string
	verbose                    bool
	metrics                    bool
	metricsJSON                string
	prefetch                   bool
	prefetchWorkers            int
	compact                    bool
	csr                        string
	retry                      int
	deadline                   time.Duration
	failFast                   bool
}

func run(rc runConfig) error {
	p, err := gen.PatternByName(rc.pattern)
	if err != nil {
		return err
	}

	var g *graph.Graph
	if rc.graphPath != "" {
		f, err := os.Open(rc.graphPath)
		if err != nil {
			return err
		}
		g, err = graph.ReadEdgeList(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		preset, err := gen.PresetByName(rc.preset)
		if err != nil {
			return err
		}
		g = preset.Generate()
	}
	fmt.Printf("data graph: N=%d M=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())

	opts := plan.AllOptions
	opts.VCBC = !rc.uncompressed
	opts.DegreeFilter = rc.degreeFilter
	opts.CliqueCache = rc.cliqueCache
	st := estimate.NewStats(g, estimate.MaxMomentDefault)
	best, err := plan.GenerateBestPlan(p, st, opts)
	if err != nil {
		return err
	}
	fmt.Printf("plan: %d instructions, est. comm=%.3g comp=%.3g (planning %s, alpha=%d beta=%d)\n",
		len(best.Plan.Instrs), best.Cost.Communication, best.Cost.Computation,
		best.Stats.Elapsed.Round(1e6), best.Stats.Alpha, best.Stats.Beta)
	if rc.verbose {
		fmt.Println(best.Plan)
	}

	ord := graph.NewTotalOrder(g)
	cfg := cluster.Defaults(g)
	cfg.Workers = rc.workers
	cfg.ThreadsPerWorker = rc.threads
	cfg.CacheBytes = int64(rc.cacheRel * float64(g.SizeBytes()))
	cfg.Tau = rc.tau
	cfg.Prefetch = rc.prefetch
	cfg.PrefetchWorkers = rc.prefetchWorkers
	cfg.CompactAdjacency = rc.compact

	// A private registry isolates the snapshot to exactly this run.
	var reg *obs.Registry
	if rc.metrics || rc.metricsJSON != "" {
		reg = obs.NewRegistry()
		cfg.Obs = reg
	}
	var store kv.Store
	if rc.csr != "" {
		s, closeStores, err := openDiskStore(rc.csr, g.NumVertices(), reg)
		if err != nil {
			return err
		}
		defer closeStores()
		store = s
	} else {
		store = kv.NewLocal(g)
	}
	if reg != nil {
		store = kv.ObserveStore(store, reg)
	}

	// Fault tolerance: the resilient decorator wraps outermost (so latency
	// observation below it times each raw attempt), and the cluster gets a
	// matching task re-execution budget. -failfast strips both layers.
	if rc.failFast {
		cfg.FailFast = true
	} else if rc.retry > 0 || rc.deadline > 0 {
		pol := resilience.DefaultPolicy()
		if rc.retry > 0 {
			pol.MaxAttempts = rc.retry + 1
		}
		pol.Timeout = rc.deadline
		store = kv.NewResilient(store, kv.ResilientOptions{Policy: pol, Obs: reg})
		cfg.TaskRetries = rc.retry
	}

	var finishOutput func() error
	if rc.output != "" {
		f, err := os.Create(rc.output)
		if err != nil {
			return err
		}
		var mu sync.Mutex
		if best.Plan.Compressed {
			sw, err := vcbc.NewWriter(f, coverList(best.Plan), best.Plan.Free, best.Plan.FreeOrderConstraints)
			if err != nil {
				f.Close()
				return err
			}
			cfg.EmitCode = func(c *vcbc.Code) bool {
				mu.Lock()
				defer mu.Unlock()
				return sw.Write(c) == nil
			}
			finishOutput = func() error {
				if err := sw.Flush(); err != nil {
					f.Close()
					return err
				}
				return f.Close()
			}
		} else {
			bw := bufio.NewWriter(f)
			cfg.Emit = func(m []int64) bool {
				mu.Lock()
				defer mu.Unlock()
				for i, v := range m {
					if i > 0 {
						fmt.Fprint(bw, " ")
					}
					fmt.Fprint(bw, v)
				}
				fmt.Fprintln(bw)
				return true
			}
			finishOutput = func() error {
				if err := bw.Flush(); err != nil {
					f.Close()
					return err
				}
				return f.Close()
			}
		}
	}

	res, err := cluster.Run(best.Plan, store, ord, g.Degree, cfg)
	if err != nil {
		return err
	}
	if finishOutput != nil {
		if err := finishOutput(); err != nil {
			return fmt.Errorf("writing output: %w", err)
		}
		fmt.Printf("results written to %s\n", rc.output)
	}

	fmt.Printf("matches: %d", res.Matches)
	if best.Plan.Compressed {
		fmt.Printf(" (from %d VCBC codes, %.1fx compression)",
			res.Codes, float64(res.Matches*int64(p.NumVertices())*8)/float64(max64(res.ResultBytes, 1)))
	}
	fmt.Println()
	fmt.Printf("time: %s  tasks: %d (%d split)\n", res.Wall.Round(1e6), res.Tasks, res.SplitTasks)
	if res.TasksRetried > 0 {
		fmt.Printf("fault tolerance: %d task re-executions healed transient failures\n", res.TasksRetried)
	}
	fmt.Printf("communication: %d DB queries, %.2f MB fetched, cache hit rate %.1f%%\n",
		res.DBQueries, float64(res.BytesFetched)/(1<<20), res.CacheHitRate*100)
	if rc.prefetch || rc.compact {
		fmt.Printf("data plane: %d store trips (%.1f keys/trip), prefetch=%v workers=%d compact=%v\n",
			res.StoreTrips, float64(res.DBQueries)/float64(max64(res.StoreTrips, 1)),
			rc.prefetch, rc.prefetchWorkers, rc.compact)
	}
	if rc.verbose {
		for _, w := range res.PerWorker {
			fmt.Printf("  worker %d: tasks=%d busy=%s matches=%d remoteQ=%d cacheHits=%d\n",
				w.Machine, w.Tasks, w.BusyTime.Round(1e6), w.Exec.Matches, w.RemoteQ, w.Cache.Hits)
		}
	}
	if reg != nil {
		snap := reg.Snapshot()
		if rc.metrics {
			fmt.Println("\nmetrics snapshot:")
			if err := snap.WriteText(os.Stdout); err != nil {
				return err
			}
		}
		if rc.metricsJSON != "" {
			data, err := snap.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(rc.metricsJSON, data, 0o644); err != nil {
				return fmt.Errorf("writing metrics: %w", err)
			}
			fmt.Printf("metrics written to %s\n", rc.metricsJSON)
		}
	}
	return nil
}

// coverList returns the cover pattern vertices (ascending) of a
// compressed plan.
func coverList(pl *plan.Plan) []int {
	inFree := make(map[int]bool, len(pl.Free))
	for _, v := range pl.Free {
		inFree[v] = true
	}
	var out []int
	for v := 0; v < pl.Pattern.NumVertices(); v++ {
		if !inFree[v] {
			out = append(out, v)
		}
	}
	return out
}

// openDiskStore opens the CSR file(s) written by `benu-store build` at
// path and composes them into one Store: a single whole-graph file
// serves directly, per-partition shards (<path>.0 … <path>.P-1)
// compose through the partition router. The returned closer releases
// every mapping; call it only after the run is drained.
func openDiskStore(path string, n int, reg *obs.Registry) (kv.Store, func(), error) {
	open := func(p string) (*kv.Disk, error) { return kv.OpenDisk(p, reg) }
	if _, err := os.Stat(path); err == nil {
		d, err := open(path)
		if err != nil {
			return nil, nil, err
		}
		if _, parts := d.Partition(); parts != 1 {
			d.Close()
			return nil, nil, fmt.Errorf("%s holds one of %d partitions; pass the shard prefix instead", path, parts)
		}
		if d.NumVertices() != n {
			d.Close()
			return nil, nil, fmt.Errorf("%s stores %d vertices, data graph has %d", path, d.NumVertices(), n)
		}
		return d, func() { d.Close() }, nil
	}
	first, err := open(path + ".0")
	if err != nil {
		return nil, nil, fmt.Errorf("no CSR file at %s or %s.0: %w", path, path, err)
	}
	_, parts := first.Partition()
	disks := []*kv.Disk{first}
	closeAll := func() {
		for _, d := range disks {
			d.Close()
		}
	}
	for p := 1; p < parts; p++ {
		d, err := open(fmt.Sprintf("%s.%d", path, p))
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		disks = append(disks, d)
	}
	stores := make([]kv.Store, parts)
	for p, d := range disks {
		if gotPart, gotParts := d.Partition(); gotPart != p || gotParts != parts {
			closeAll()
			return nil, nil, fmt.Errorf("%s.%d holds partition %d/%d, want %d/%d", path, p, gotPart, gotParts, p, parts)
		}
		if d.NumVertices() != n {
			closeAll()
			return nil, nil, fmt.Errorf("%s.%d stores %d vertices, data graph has %d", path, p, d.NumVertices(), n)
		}
		stores[p] = d
	}
	return kv.NewPartitioned(stores, n), closeAll, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
