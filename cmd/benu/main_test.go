package main

import (
	"os"
	"path/filepath"
	"testing"

	"benu/internal/gen"
	"benu/internal/graph"
)

func TestRunOnPreset(t *testing.T) {
	err := run(runConfig{
		pattern: "triangle", preset: "as",
		workers: 2, threads: 2, cacheRel: 1, tau: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithExtensions(t *testing.T) {
	err := run(runConfig{
		pattern: "q4", preset: "as",
		workers: 2, threads: 2, cacheRel: 0.5, tau: 100,
		degreeFilter: true, cliqueCache: true, verbose: true,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFromEdgeListFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, gen.DemoDataGraph()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	err = run(runConfig{
		pattern: "demo", graphPath: path,
		workers: 1, threads: 1, cacheRel: 1, tau: 0, uncompressed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(runConfig{pattern: "nope", preset: "as", workers: 1, threads: 1}); err == nil {
		t.Error("unknown pattern accepted")
	}
	if err := run(runConfig{pattern: "triangle", preset: "nope", workers: 1, threads: 1}); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run(runConfig{pattern: "triangle", graphPath: "/does/not/exist", workers: 1, threads: 1}); err == nil {
		t.Error("missing file accepted")
	}
}
