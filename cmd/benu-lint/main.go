// Command benu-lint is the project's multichecker: it runs the custom
// analyzer suite (internal/lint) over the packages named on the command
// line — ./... by default — and exits nonzero when any invariant is
// violated. It is wired into `make lint`, which `make check` and CI run
// as a tier of the verification gate.
//
// Usage:
//
//	benu-lint [-json] [-sarif] [-list] [packages...]
//
// Findings print as file:line:col: [analyzer] message; -json emits the
// stable Finding array, -sarif a SARIF 2.1.0 document for GitHub code
// scanning annotations. The whole-tree checks (metric doc drift) run
// only when linting ./... — a package subset cannot prove a documented
// metric unused.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"benu/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 document (GitHub annotations)")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benu-lint [-json] [-sarif] [-list] [packages...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the BENU analyzer suite (see docs/LINTING.md) over the named\npackages (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "benu-lint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Doc-drift checks need the whole tree in view.
	cross := len(patterns) == 1 && patterns[0] == "./..."

	findings, err := lint.Run(".", patterns, lint.Options{CrossPackage: cross})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benu-lint:", err)
		os.Exit(2)
	}

	switch {
	case *sarifOut:
		root, err := os.Getwd()
		if err != nil {
			root = ""
		}
		if err := lint.WriteSARIF(os.Stdout, root, findings); err != nil {
			fmt.Fprintln(os.Stderr, "benu-lint:", err)
			os.Exit(2)
		}
	case *jsonOut:
		if findings == nil {
			// A clean run encodes as [], not null — consumers parse an array.
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "benu-lint:", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "benu-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
