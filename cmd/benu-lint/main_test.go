package main

import (
	"os"
	"path/filepath"
	"testing"

	"benu/internal/lint"
)

// TestRepoIsLintClean is the self-hosting smoke test: the analyzer
// suite, run exactly as `make lint` runs it, must report nothing on
// this repository. A failure here means either a real invariant
// violation slipped in or an analyzer grew a false positive — both are
// ship-blockers for the lint tier.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("lint smoke compiles the whole tree; skipped in -short")
	}
	findings, err := lint.Run("../..", []string{"./..."}, lint.Options{CrossPackage: true})
	if err != nil {
		t.Fatalf("lint run failed: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("repository is not lint-clean: %d finding(s); run `make lint` for details", len(findings))
	}
}

// TestAnalyzerInventory pins the suite composition: removing an
// analyzer from the bundle should be a deliberate, test-breaking act.
func TestAnalyzerInventory(t *testing.T) {
	want := map[string]bool{
		"ctxflow":     true,
		"decodesafe":  true,
		"determinism": true,
		"goroleak":    true,
		"hotpath":     true,
		"instrswitch": true,
		"lockorder":   true,
		"metricname":  true,
		"wiresafe":    true,
	}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q in suite", a.Name)
		}
	}
}

// TestListSelfCheck backs `benu-lint -list`: every registered analyzer
// must carry a doc string (that is what -list prints) and a golden
// fixture module under internal/lint/<name>/testdata/mod — an analyzer
// without fixture coverage is an analyzer whose regressions nobody
// catches.
func TestListSelfCheck(t *testing.T) {
	for _, a := range lint.Analyzers() {
		if a.Name == "" {
			t.Fatal("analyzer with empty name in suite")
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc string (-list would print a blank line)", a.Name)
		}
		fixture := filepath.Join("..", "..", "internal", "lint", a.Name, "testdata", "mod")
		info, err := os.Stat(fixture)
		if err != nil {
			t.Errorf("analyzer %q has no golden fixture: %v", a.Name, err)
			continue
		}
		if !info.IsDir() {
			t.Errorf("analyzer %q fixture path %s is not a directory", a.Name, fixture)
		}
		if _, err := os.Stat(filepath.Join(fixture, "go.mod")); err != nil {
			t.Errorf("analyzer %q fixture is not a self-contained module: %v", a.Name, err)
		}
	}
}
