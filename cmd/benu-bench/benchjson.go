package main

// -bench-json: a machine-readable benchmark snapshot of the adjacency
// data plane. The matrix is small enough for CI smoke (seconds): two
// patterns (triangle, q4) × two store backends (in-process local, TCP
// over loopback) × two data-plane variants (baseline demand fetch vs
// batched prefetch + compact encoding), all on the "ok-s" dataset — a
// bench-scaled cut of the Orkut stand-in. No thresholds are enforced;
// the snapshot records the numbers (store trips, bytes, wall time) that
// BENCH_*.json files track across PRs.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"benu/internal/cluster"
	"benu/internal/estimate"
	"benu/internal/gen"
	"benu/internal/graph"
	"benu/internal/kv"
	"benu/internal/plan"
)

// okSmall is the bench-json dataset: the Orkut stand-in's shape at a
// scale where the whole matrix runs in CI seconds.
var okSmall = gen.Preset{
	Name:     "ok-s",
	FullName: "Orkut (bench-scaled)",
	Config:   gen.PowerLawConfig{N: 1200, M0: 4, EdgesPer: 6, Triad: 0.45, Seed: 3},
}

// benchCell is one matrix point.
type benchCell struct {
	Pattern string `json:"pattern"`
	Backend string `json:"backend"`
	Variant string `json:"variant"`

	Matches      int64   `json:"matches"`
	WallMS       float64 `json:"wall_ms"`
	DBQueries    int64   `json:"db_queries"`
	StoreTrips   int64   `json:"store_trips"`
	BytesFetched int64   `json:"bytes_fetched"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// Wire* are the TCP client's own counters (absent for local cells):
	// what actually crossed the sockets, batch-aware.
	WireQueries int64 `json:"wire_queries,omitempty"`
	WireTrips   int64 `json:"wire_trips,omitempty"`
	WireBytes   int64 `json:"wire_bytes,omitempty"`
}

// benchSnapshot is the -bench-json file format.
type benchSnapshot struct {
	Dataset   string      `json:"dataset"`
	Vertices  int         `json:"vertices"`
	Edges     int64       `json:"edges"`
	GoVersion string      `json:"go_version"`
	Cells     []benchCell `json:"cells"`
}

// runBenchJSON runs the matrix and writes the snapshot to path.
func runBenchJSON(path string) error {
	g := okSmall.Cached()
	ord := graph.NewTotalOrder(g)
	st := estimate.NewStats(g, estimate.MaxMomentDefault)

	snap := benchSnapshot{
		Dataset:   okSmall.Name,
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		GoVersion: runtime.Version(),
	}

	variants := []struct {
		name              string
		prefetch, compact bool
	}{
		{"baseline", false, false},
		{"prefetch-compact", true, true},
	}

	for _, patName := range []string{"triangle", "q4"} {
		p, err := gen.PatternByName(patName)
		if err != nil {
			return err
		}
		best, err := plan.GenerateBestPlan(p, st, plan.AllOptions)
		if err != nil {
			return err
		}

		var want int64 = -1
		for _, backend := range []string{"local", "tcp"} {
			for _, v := range variants {
				cfg := cluster.Defaults(g)
				cfg.Workers = 2
				cfg.ThreadsPerWorker = 2
				cfg.TriangleCacheEntries = 1 << 12
				cfg.Prefetch = v.prefetch
				cfg.CompactAdjacency = v.compact

				var store kv.Store
				var client *kv.Client
				var servers []*kv.Server
				switch backend {
				case "local":
					store = kv.NewLocal(g)
				case "tcp":
					var addrs []string
					servers, addrs, err = kv.ServeGraph(g, 2)
					if err != nil {
						return err
					}
					client, err = kv.Dial(addrs, g.NumVertices())
					if err != nil {
						return err
					}
					store = client
				}

				t0 := time.Now()
				res, err := cluster.Run(best.Plan, store, ord, g.Degree, cfg)
				wall := time.Since(t0)
				if client != nil {
					client.Close()
				}
				for _, s := range servers {
					s.Close()
				}
				if err != nil {
					return fmt.Errorf("bench-json %s/%s/%s: %w", patName, backend, v.name, err)
				}
				if want < 0 {
					want = res.Matches
				} else if res.Matches != want {
					return fmt.Errorf("bench-json %s/%s/%s: %d matches, other variants found %d",
						patName, backend, v.name, res.Matches, want)
				}

				cell := benchCell{
					Pattern:      patName,
					Backend:      backend,
					Variant:      v.name,
					Matches:      res.Matches,
					WallMS:       float64(wall.Microseconds()) / 1e3,
					DBQueries:    res.DBQueries,
					StoreTrips:   res.StoreTrips,
					BytesFetched: res.BytesFetched,
					CacheHitRate: res.CacheHitRate,
				}
				if client != nil {
					m := client.Metrics()
					cell.WireQueries = m.Queries()
					cell.WireTrips = m.Trips()
					cell.WireBytes = m.Bytes()
				}
				snap.Cells = append(snap.Cells, cell)
				fmt.Fprintf(os.Stderr, "bench-json %-8s %-5s %-16s matches=%d trips=%d bytes=%d wall=%.1fms\n",
					patName, backend, v.name, cell.Matches, cell.StoreTrips, cell.BytesFetched, cell.WallMS)
			}
		}
	}

	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchmark snapshot written to %s (%d cells)\n", path, len(snap.Cells))
	return nil
}
