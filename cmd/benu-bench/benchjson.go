package main

// -bench-json: a machine-readable benchmark snapshot of the adjacency
// data plane, and (with -bench-baseline) the CI regression gate over it.
//
// The matrix spans two datasets:
//
//   - "ok-s": a bench-scaled cut of the Orkut stand-in (1.2k vertices).
//     Two patterns (triangle, q4) × two store backends (in-process
//     local, TCP over loopback) × two data-plane variants (baseline
//     demand fetch vs batched prefetch + compact encoding). Cells run
//     benchRepsSmall times and keep the fastest repetition — single-shot
//     walls at this scale are mostly scheduler noise.
//   - "pl-1m": a million-vertex power-law graph (Holme–Kim, EdgesPer 3).
//     Triangle × TCP × both variants under a constrained 12 MB DB cache,
//     one repetition — at ~45s per cell the wall is self-averaging, and
//     this is the configuration where the compact data plane must WIN,
//     not just break even: the cache is far smaller than the graph, so
//     the run is dominated by store round trips, which is exactly what
//     batched prefetch (fewer trips) and compact payloads (more vertices
//     per cache byte, fewer wire bytes) exist to cut. With the default
//     graph-sized cache every miss is compulsory and the local backend
//     serves raw slices zero-copy, so no data-plane change can show up
//     in the wall there (docs/PERFORMANCE.md, "why the cache is
//     constrained").
//
// Gating policy (docs/PERFORMANCE.md): the machine-independent invariant
// is the INTRA-RUN ratio wall(prefetch-compact)/wall(baseline), bounded
// per dataset; the committed BENCH_PR6.json additionally pins match
// counts exactly and bounds absolute wall inflation loosely.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"benu/internal/cluster"
	"benu/internal/estimate"
	"benu/internal/gen"
	"benu/internal/graph"
	"benu/internal/kv"
	"benu/internal/plan"
)

// okSmall is the small bench-json dataset: the Orkut stand-in's shape at
// a scale where its whole matrix runs in CI seconds.
var okSmall = gen.Preset{
	Name:     "ok-s",
	FullName: "Orkut (bench-scaled)",
	Config:   gen.PowerLawConfig{N: 1200, M0: 4, EdgesPer: 6, Triad: 0.45, Seed: 3},
}

// plLarge is the million-vertex dataset: large enough that per-embedding
// decode and allocation costs dominate the wall clock, which is exactly
// what the compact data plane's fused read path is supposed to fix.
var plLarge = gen.Preset{
	Name:     "pl-1m",
	FullName: "power-law 1M (Holme-Kim)",
	Config:   gen.PowerLawConfig{N: 1_000_000, M0: 4, EdgesPer: 3, Triad: 0.1, Seed: 7},
}

const (
	// benchRepsSmall is the repetition count for ok-s cells (fastest wins).
	benchRepsSmall = 5
	// ratioTolSmall bounds wall(prefetch-compact)/wall(baseline) on ok-s.
	// The variants are near parity there and the cells are
	// millisecond-scale, where even min-of-5 walls swing 30%+ under CI
	// machine contention — so this bound only catches gross small-scale
	// regressions; the tight, trustworthy wall invariant is the pl-1m
	// ratio below, whose ~50s cells self-average.
	ratioTolSmall = 1.4
	// ratioTolLarge bounds the same ratio on pl-1m, where the compact
	// path must not give back its win: measured ratios sit at 0.86-0.93
	// (docs/PERFORMANCE.md), the cells are long enough to self-average,
	// and the tolerance leaves room only for baseline-side jitter — a
	// breach means the win regressed.
	ratioTolLarge = 1.05
	// plCacheBytes is the pl-1m DB-cache budget: ~1/12 of the graph's
	// raw adjacency volume, so the cache is under genuine pressure and
	// the data plane's density/batching advantages decide the wall.
	plCacheBytes = 12 << 20
	// defaultWallTol bounds wall inflation against the committed
	// baseline file. Deliberately loose — absolute walls are machine
	// dependent; this catches only gross regressions (and -bench-tolerance
	// overrides it).
	defaultWallTol = 3.0
)

// benchCell is one matrix point.
type benchCell struct {
	Dataset string `json:"dataset"`
	Pattern string `json:"pattern"`
	Backend string `json:"backend"`
	Variant string `json:"variant"`
	Reps    int    `json:"reps"`
	// CacheBytes is the DB-cache budget when the cell constrains it
	// (0 = the default graph-sized cache).
	CacheBytes int64 `json:"cache_bytes,omitempty"`

	Matches      int64   `json:"matches"`
	WallMS       float64 `json:"wall_ms"`
	DBQueries    int64   `json:"db_queries"`
	StoreTrips   int64   `json:"store_trips"`
	BytesFetched int64   `json:"bytes_fetched"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// Wire* are the TCP client's own counters (absent for local cells):
	// what actually crossed the sockets, batch-aware.
	WireQueries int64 `json:"wire_queries,omitempty"`
	WireTrips   int64 `json:"wire_trips,omitempty"`
	WireBytes   int64 `json:"wire_bytes,omitempty"`
}

// benchDataset describes one dataset of the snapshot.
type benchDataset struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
}

// benchSnapshot is the -bench-json file format (schema documented in
// docs/PERFORMANCE.md).
type benchSnapshot struct {
	GoVersion string         `json:"go_version"`
	Datasets  []benchDataset `json:"datasets"`
	Cells     []benchCell    `json:"cells"`
}

// benchVariants are the two data-plane configurations every cell pair
// compares.
var benchVariants = []struct {
	name              string
	prefetch, compact bool
}{
	{"baseline", false, false},
	{"prefetch-compact", true, true},
}

// runBenchCells runs the variant pair for one (dataset, pattern, backend)
// point and appends both cells to snap. cacheBytes > 0 overrides the
// default graph-sized DB-cache budget.
func runBenchCells(snap *benchSnapshot, ds gen.Preset, patName, backend string, reps int, cacheBytes int64) error {
	g := ds.Cached()
	ord := graph.NewTotalOrder(g)
	st := estimate.NewStats(g, estimate.MaxMomentDefault)
	p, err := gen.PatternByName(patName)
	if err != nil {
		return err
	}
	best, err := plan.GenerateBestPlan(p, st, plan.AllOptions)
	if err != nil {
		return err
	}

	var want int64 = -1
	for _, v := range benchVariants {
		var cell benchCell
		for rep := 0; rep < reps; rep++ {
			cfg := cluster.Defaults(g)
			cfg.Workers = 2
			cfg.ThreadsPerWorker = 2
			cfg.TriangleCacheEntries = 1 << 12
			cfg.Prefetch = v.prefetch
			cfg.CompactAdjacency = v.compact
			if cacheBytes > 0 {
				cfg.CacheBytes = cacheBytes
			}

			var store kv.Store
			var client *kv.Client
			var servers []*kv.Server
			switch backend {
			case "local":
				store = kv.NewLocal(g)
			case "tcp":
				var addrs []string
				servers, addrs, err = kv.ServeGraph(g, 2)
				if err != nil {
					return err
				}
				client, err = kv.Dial(addrs, g.NumVertices())
				if err != nil {
					return err
				}
				store = client
			}

			t0 := time.Now()
			res, err := cluster.Run(best.Plan, store, ord, g.Degree, cfg)
			wall := time.Since(t0)
			if client != nil {
				client.Close()
			}
			for _, s := range servers {
				s.Close()
			}
			if err != nil {
				return fmt.Errorf("bench-json %s/%s/%s/%s: %w", ds.Name, patName, backend, v.name, err)
			}
			if want < 0 {
				want = res.Matches
			} else if res.Matches != want {
				return fmt.Errorf("bench-json %s/%s/%s/%s: %d matches, other runs found %d",
					ds.Name, patName, backend, v.name, res.Matches, want)
			}

			wallMS := float64(wall.Microseconds()) / 1e3
			if rep > 0 && wallMS >= cell.WallMS {
				continue // keep the fastest repetition
			}
			cell = benchCell{
				Dataset:      ds.Name,
				Pattern:      patName,
				Backend:      backend,
				Variant:      v.name,
				CacheBytes:   cacheBytes,
				Matches:      res.Matches,
				WallMS:       wallMS,
				DBQueries:    res.DBQueries,
				StoreTrips:   res.StoreTrips,
				BytesFetched: res.BytesFetched,
				CacheHitRate: res.CacheHitRate,
			}
			if client != nil {
				m := client.Metrics()
				cell.WireQueries = m.Queries()
				cell.WireTrips = m.Trips()
				cell.WireBytes = m.Bytes()
			}
		}
		cell.Reps = reps
		snap.Cells = append(snap.Cells, cell)
		fmt.Fprintf(os.Stderr, "bench-json %-6s %-8s %-5s %-16s matches=%d trips=%d bytes=%d wall=%.1fms\n",
			ds.Name, patName, backend, v.name, cell.Matches, cell.StoreTrips, cell.BytesFetched, cell.WallMS)
	}
	return nil
}

// runBenchJSON runs the matrix, writes the snapshot to path, and — when
// baselinePath is set — gates the fresh run against the committed
// snapshot and its own intra-run ratios.
func runBenchJSON(path, baselinePath string, wallTol float64) error {
	var snap benchSnapshot
	snap.GoVersion = runtime.Version()

	for _, patName := range []string{"triangle", "q4"} {
		for _, backend := range []string{"local", "tcp"} {
			if err := runBenchCells(&snap, okSmall, patName, backend, benchRepsSmall, 0); err != nil {
				return err
			}
		}
	}
	if err := runBenchCells(&snap, plLarge, "triangle", "tcp", 1, plCacheBytes); err != nil {
		return err
	}
	for _, ds := range []gen.Preset{okSmall, plLarge} {
		g := ds.Cached()
		snap.Datasets = append(snap.Datasets, benchDataset{
			Name: ds.Name, Vertices: g.NumVertices(), Edges: g.NumEdges(),
		})
	}

	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchmark snapshot written to %s (%d cells)\n", path, len(snap.Cells))

	if baselinePath == "" {
		return nil
	}
	return gateBench(&snap, baselinePath, wallTol)
}

// gateBench enforces the regression policy: intra-run variant ratios
// first (machine independent), then match counts and loose absolute
// walls against the committed baseline snapshot.
func gateBench(snap *benchSnapshot, baselinePath string, wallTol float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench gate: %w", err)
	}
	var base benchSnapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench gate: parsing %s: %w", baselinePath, err)
	}
	if wallTol <= 0 {
		wallTol = defaultWallTol
	}
	key := func(c benchCell) string {
		return c.Dataset + "/" + c.Pattern + "/" + c.Backend + "/" + c.Variant
	}
	fresh := make(map[string]benchCell, len(snap.Cells))
	for _, c := range snap.Cells {
		fresh[key(c)] = c
	}

	var violations []string
	// Intra-run ratio gate: prefetch-compact must stay within the
	// per-dataset tolerance of its paired baseline cell.
	for _, c := range snap.Cells {
		if c.Variant != "prefetch-compact" {
			continue
		}
		bk := c.Dataset + "/" + c.Pattern + "/" + c.Backend + "/baseline"
		b, ok := fresh[bk]
		if !ok || b.WallMS <= 0 {
			violations = append(violations, fmt.Sprintf("%s: no paired baseline cell", key(c)))
			continue
		}
		tol := ratioTolSmall
		if c.Dataset == plLarge.Name {
			tol = ratioTolLarge
		}
		if ratio := c.WallMS / b.WallMS; ratio > tol {
			violations = append(violations, fmt.Sprintf(
				"%s: wall %.1fms is %.2fx the baseline variant's %.1fms (tolerance %.2fx)",
				key(c), c.WallMS, ratio, b.WallMS, tol))
		}
	}
	// Cross-file gate: identical matches (the plans and datasets are
	// deterministic), loosely bounded wall inflation.
	for _, bc := range base.Cells {
		c, ok := fresh[key(bc)]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: cell present in %s but not in this run",
				key(bc), baselinePath))
			continue
		}
		if c.Matches != bc.Matches {
			violations = append(violations, fmt.Sprintf("%s: %d matches, committed snapshot has %d",
				key(bc), c.Matches, bc.Matches))
		}
		if bc.WallMS > 0 && c.WallMS > bc.WallMS*wallTol {
			violations = append(violations, fmt.Sprintf(
				"%s: wall %.1fms exceeds %.1fx the committed %.1fms",
				key(bc), c.WallMS, wallTol, bc.WallMS))
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "bench gate FAIL: %s\n", v)
		}
		return fmt.Errorf("bench gate: %d violation(s) against %s", len(violations), baselinePath)
	}
	fmt.Printf("bench gate passed against %s (%d cells compared)\n", baselinePath, len(base.Cells))
	return nil
}
