// Command benu-bench regenerates the paper's evaluation tables and
// figures (§VII) on the scaled synthetic datasets.
//
// Usage:
//
//	benu-bench -exp all            # the full suite (minutes)
//	benu-bench -exp table5 -quick  # one experiment, reduced sweep
//	benu-bench -list
//
// Experiment names: table1, exp1/table4, exp2/fig7, exp3/fig8, exp4/fig9,
// exp5/table5, exp6/table6, exp7/fig10, all.
//
// Measurement substrate for performance work:
//
//	benu-bench -exp fig9 -metrics            # dump the metrics snapshot
//	benu-bench -exp table5 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	benu-bench -exp all -pprof localhost:6060 &   # live net/http/pprof
//
// -metrics prints the process-wide observability snapshot (every run of
// the simulated cluster reports into it; see docs/METRICS.md) after the
// experiments finish. -pprof serves the stdlib net/http/pprof handlers
// on the given address for live CPU/heap/goroutine inspection, and
// -cpuprofile/-memprofile write pprof files for offline analysis.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers for -pprof
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"benu/internal/experiments"
	"benu/internal/obs"
)

type experiment struct {
	names []string
	about string
	run   func(experiments.Options, io.Writer) error
}

var suite = []experiment{
	{[]string{"table1"}, "Table I: match counts of core structures per dataset",
		func(o experiments.Options, w io.Writer) error {
			rep, err := experiments.TableI(o)
			if err != nil {
				return err
			}
			rep.WriteText(w)
			return nil
		}},
	{[]string{"exp1", "table4"}, "Exp-1 / Table IV: best execution plan generation efficiency",
		func(o experiments.Options, w io.Writer) error {
			rep, err := experiments.TableIV(o)
			if err != nil {
				return err
			}
			rep.WriteText(w)
			return nil
		}},
	{[]string{"exp2", "fig7"}, "Exp-2 / Fig. 7: execution plan optimization ablation",
		func(o experiments.Options, w io.Writer) error {
			rep, err := experiments.Fig7(o)
			if err != nil {
				return err
			}
			rep.WriteText(w)
			return nil
		}},
	{[]string{"exp3", "fig8"}, "Exp-3 / Fig. 8: local database cache capacity sweep",
		func(o experiments.Options, w io.Writer) error {
			rep, err := experiments.Fig8(o)
			if err != nil {
				return err
			}
			rep.WriteText(w)
			return nil
		}},
	{[]string{"exp4", "fig9"}, "Exp-4 / Fig. 9: task splitting",
		func(o experiments.Options, w io.Writer) error {
			rep, err := experiments.Fig9(o)
			if err != nil {
				return err
			}
			rep.WriteText(w)
			return nil
		}},
	{[]string{"exp5", "table5"}, "Exp-5 / Table V: BENU vs BFS-style join (CBF stand-in)",
		func(o experiments.Options, w io.Writer) error {
			rep, err := experiments.TableV(o)
			if err != nil {
				return err
			}
			rep.WriteText(w)
			return nil
		}},
	{[]string{"exp6", "table6"}, "Exp-6 / Table VI: BENU vs WCOJ (BiGJoin stand-in)",
		func(o experiments.Options, w io.Writer) error {
			rep, err := experiments.TableVI(o)
			if err != nil {
				return err
			}
			rep.WriteText(w)
			return nil
		}},
	{[]string{"exp7", "fig10"}, "Fig. 10: machine scalability",
		func(o experiments.Options, w io.Writer) error {
			rep, err := experiments.Fig10(o)
			if err != nil {
				return err
			}
			rep.WriteText(w)
			return nil
		}},
	{[]string{"updates"}, "Extension: data-graph updates — index maintenance vs BENU's on-demand store",
		func(o experiments.Options, w io.Writer) error {
			rep, err := experiments.Updates(o)
			if err != nil {
				return err
			}
			rep.WriteText(w)
			return nil
		}},
	{[]string{"baselines"}, "Extension: BENU vs all three competitor families side by side",
		func(o experiments.Options, w io.Writer) error {
			rep, err := experiments.Baselines(o)
			if err != nil {
				return err
			}
			rep.WriteText(w)
			return nil
		}},
}

func main() {
	var (
		expName    = flag.String("exp", "all", "experiment to run (see -list)")
		benchJSON  = flag.String("bench-json", "", "write a machine-readable data-plane benchmark snapshot to this file and exit")
		benchBase  = flag.String("bench-baseline", "", "with -bench-json: gate the fresh snapshot against this committed baseline (exit nonzero on regression)")
		benchTol   = flag.Float64("bench-tolerance", 0, "with -bench-baseline: absolute wall-time inflation bound vs the committed snapshot (0 = default, see docs/PERFORMANCE.md)")
		quick      = flag.Bool("quick", false, "reduced sweeps and budgets")
		deadline   = flag.Duration("deadline", 0, "per-cell time budget for the comparison tables")
		list       = flag.Bool("list", false, "list experiments and exit")
		progress   = flag.Bool("progress", true, "print per-cell progress to stderr")
		metrics    = flag.Bool("metrics", false, "print the process metrics snapshot after the experiments (see docs/METRICS.md)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *list {
		for _, e := range suite {
			fmt.Printf("%-16v %s\n", e.names, e.about)
		}
		return
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *benchBase, *benchTol); err != nil {
			fmt.Fprintln(os.Stderr, "benu-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "benu-bench: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof: serving http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benu-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benu-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benu-bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benu-bench: memprofile: %v\n", err)
			}
		}
	}()
	defer func() {
		if *metrics {
			fmt.Println("\nmetrics snapshot:")
			if err := obs.Default().Snapshot().WriteText(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "benu-bench: metrics: %v\n", err)
			}
		}
	}()

	opts := experiments.Options{Quick: *quick, CellDeadline: *deadline}
	if *progress {
		opts.Progress = os.Stderr
	}

	run := func(e experiment) {
		t0 := time.Now()
		if err := e.run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benu-bench %s: %v\n", e.names[0], err)
			os.Exit(1)
		}
		fmt.Printf("[%s finished in %s]\n\n", e.names[0], time.Since(t0).Round(time.Millisecond))
	}

	if *expName == "all" {
		for _, e := range suite {
			run(e)
		}
		return
	}
	for _, e := range suite {
		for _, n := range e.names {
			if n == *expName {
				run(e)
				return
			}
		}
	}
	fmt.Fprintf(os.Stderr, "benu-bench: unknown experiment %q (try -list)\n", *expName)
	os.Exit(1)
}
