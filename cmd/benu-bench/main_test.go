package main

import (
	"strings"
	"testing"
	"time"

	"benu/internal/experiments"
)

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range suite {
		if len(e.names) == 0 || e.about == "" || e.run == nil {
			t.Errorf("incomplete suite entry %v", e.names)
		}
		for _, n := range e.names {
			if seen[n] {
				t.Errorf("duplicate experiment name %q", n)
			}
			seen[n] = true
		}
	}
	// Every table and figure of the paper is covered.
	for _, want := range []string{"table1", "table4", "fig7", "fig8", "fig9", "table5", "table6", "fig10"} {
		if !seen[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
}

func TestSuiteEntriesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Run the two fastest entries end to end through the suite plumbing.
	opts := experiments.Options{Quick: true, CellDeadline: 5 * time.Second}
	var sb strings.Builder
	for _, e := range suite {
		if e.names[0] != "exp3" && e.names[0] != "exp2" {
			continue
		}
		sb.Reset()
		if err := e.run(opts, &sb); err != nil {
			t.Fatalf("%s: %v", e.names[0], err)
		}
		if sb.Len() == 0 {
			t.Errorf("%s produced no output", e.names[0])
		}
	}
}
