// Command benu-worker is one worker machine of a networked BENU
// deployment: it joins the benu-master at -master, receives the plan,
// total order, and storage-node addresses, and pulls task batches until
// the run completes. Start as many as you like, whenever you like —
// workers that join mid-run pull (or steal) whatever work remains.
//
// Usage:
//
//	benu-worker -master 127.0.0.1:7077 -threads 4
//	benu-worker -master 127.0.0.1:7077 -cache-mb 64 -name rack2-03
//
// The worker exits 0 when the master reports the run done, and non-zero
// when it is fenced (its lease expired while it was unresponsive) or
// the master becomes unreachable.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"benu/internal/cluster/sched"
	"benu/internal/obs"
)

func main() {
	var (
		master  = flag.String("master", "127.0.0.1:7077", "benu-master address to join")
		threads = flag.Int("threads", 4, "working threads")
		cacheMB = flag.Int("cache-mb", 32, "DB cache capacity in MiB (0 = off)")
		name    = flag.String("name", "", "worker label used in logs")
		metrics = flag.Bool("metrics", false, "print the worker's metrics snapshot on exit (see docs/METRICS.md)")
	)
	flag.Parse()

	if err := run(runConfig{
		master: *master, threads: *threads, cacheMB: *cacheMB,
		name: *name, metrics: *metrics,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "benu-worker:", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed command-line options.
type runConfig struct {
	master  string
	threads int
	cacheMB int
	name    string
	metrics bool
}

func run(rc runConfig) error {
	reg := obs.NewRegistry()
	start := time.Now()
	w, err := sched.StartWorker(rc.master, sched.WorkerConfig{
		Threads:    rc.threads,
		CacheBytes: int64(rc.cacheMB) << 20,
		Name:       rc.name,
		Obs:        reg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("worker %d: joined %s (%d threads)\n", w.ID(), rc.master, rc.threads)
	err = w.Wait()
	stats, tasks := w.Stats()
	fmt.Printf("worker %d: tasks=%d matches=%d dbq=%d wall=%s\n",
		w.ID(), tasks, stats.Matches, stats.DBQueries, time.Since(start).Round(time.Millisecond))
	if rc.metrics {
		fmt.Print(reg.Snapshot().Text())
	}
	return err
}
