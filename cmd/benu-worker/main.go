// Command benu-worker is one worker machine of a networked BENU
// deployment: it joins the benu-master at -master, receives the plan,
// total order, and storage-node addresses, and pulls task batches until
// the run completes. Start as many as you like, whenever you like —
// workers that join mid-run pull (or steal) whatever work remains.
//
// Usage:
//
//	benu-worker -master 127.0.0.1:7077 -threads 4
//	benu-worker -master 127.0.0.1:7077 -cache-mb 64 -name rack2-03
//
// The worker exits 0 when the master reports the run done, and non-zero
// when it is fenced (its lease expired while it was unresponsive) or
// the master becomes unreachable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"benu/internal/cluster/sched"
	"benu/internal/obs"
)

func main() {
	var (
		master  = flag.String("master", "127.0.0.1:7077", "benu-master address to join")
		threads = flag.Int("threads", 4, "working threads")
		cacheMB = flag.Int("cache-mb", 32, "DB cache capacity in MiB (0 = off)")
		name    = flag.String("name", "", "worker label used in logs")
		metrics = flag.Bool("metrics", false, "print the worker's metrics snapshot on exit (see docs/METRICS.md)")
		parts   = flag.String("store-parts", "", "comma-separated store partitions served on this machine, as part/parts (e.g. 0,2/4); the master prefers leasing local-start tasks")
	)
	flag.Parse()

	storeParts, numParts, err := parseParts(*parts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benu-worker:", err)
		os.Exit(1)
	}
	if err := run(runConfig{
		master: *master, threads: *threads, cacheMB: *cacheMB,
		name: *name, metrics: *metrics,
		storeParts: storeParts, numParts: numParts,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "benu-worker:", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed command-line options.
type runConfig struct {
	master     string
	threads    int
	cacheMB    int
	name       string
	metrics    bool
	storeParts []int
	numParts   int
}

// parseParts parses the -store-parts syntax "i,j,.../n" into the
// locality advertisement of sched.WorkerConfig. Empty means none.
func parseParts(s string) ([]int, int, error) {
	if s == "" {
		return nil, 0, nil
	}
	idxs, denom, ok := strings.Cut(s, "/")
	if !ok {
		return nil, 0, fmt.Errorf("-store-parts %q: want parts/numparts, e.g. 0,2/4", s)
	}
	n, err := strconv.Atoi(denom)
	if err != nil || n < 1 {
		return nil, 0, fmt.Errorf("-store-parts %q: bad partition count %q", s, denom)
	}
	var parts []int
	for _, tok := range strings.Split(idxs, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || p < 0 || p >= n {
			return nil, 0, fmt.Errorf("-store-parts %q: bad partition %q", s, tok)
		}
		parts = append(parts, p)
	}
	return parts, n, nil
}

func run(rc runConfig) error {
	reg := obs.NewRegistry()
	start := time.Now()
	w, err := sched.StartWorker(rc.master, sched.WorkerConfig{
		Threads:       rc.threads,
		CacheBytes:    int64(rc.cacheMB) << 20,
		Name:          rc.name,
		Obs:           reg,
		StoreParts:    rc.storeParts,
		StoreNumParts: rc.numParts,
	})
	if err != nil {
		return err
	}
	fmt.Printf("worker %d: joined %s (%d threads)\n", w.ID(), rc.master, rc.threads)
	err = w.Wait()
	stats, tasks := w.Stats()
	fmt.Printf("worker %d: tasks=%d matches=%d dbq=%d wall=%s\n",
		w.ID(), tasks, stats.Matches, stats.DBQueries, time.Since(start).Round(time.Millisecond))
	if rc.metrics {
		fmt.Print(reg.Snapshot().Text())
	}
	return err
}
