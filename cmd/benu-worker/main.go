// Command benu-worker is one worker machine of a networked BENU
// deployment: it joins the benu-master at -master, receives the plan,
// total order, and storage-node addresses, and pulls task batches until
// the run completes. Start as many as you like, whenever you like —
// workers that join mid-run pull (or steal) whatever work remains.
//
// Usage:
//
//	benu-worker -master 127.0.0.1:7077 -threads 4
//	benu-worker -master 127.0.0.1:7077 -cache-mb 64 -name rack2-03
//
// The worker exits 0 when the master reports the run done, and non-zero
// when it is fenced (its lease expired while it was unresponsive) or
// the master stays unreachable past the -rejoin-for window. Within that
// window, control-plane RPCs retry with capped backoff and the worker
// re-joins a restarted master (a new epoch) as a fresh worker — in-flight
// results are reported to the new incarnation, never thrown away.
//
// SIGINT/SIGTERM drains gracefully: the worker stops leasing, finishes
// and reports every task it already holds, and exits 0. A second signal
// kills it the default way.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"benu/internal/cluster/sched"
	"benu/internal/obs"
	"benu/internal/resilience"
)

func main() {
	var (
		master  = flag.String("master", "127.0.0.1:7077", "benu-master address to join")
		threads = flag.Int("threads", 4, "working threads")
		cacheMB = flag.Int("cache-mb", 32, "DB cache capacity in MiB (0 = off)")
		name    = flag.String("name", "", "worker label used in logs")
		metrics = flag.Bool("metrics", false, "print the worker's metrics snapshot on exit (see docs/METRICS.md)")
		parts   = flag.String("store-parts", "", "comma-separated store partitions served on this machine, as part/parts (e.g. 0,2/4); the master prefers leasing local-start tasks")
		rejoin  = flag.Duration("rejoin-for", 30*time.Second, "how long to retry an unreachable master before giving up (0 = fail on first error)")
	)
	flag.Parse()

	storeParts, numParts, err := parseParts(*parts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benu-worker:", err)
		os.Exit(1)
	}
	if err := run(runConfig{
		master: *master, threads: *threads, cacheMB: *cacheMB,
		name: *name, metrics: *metrics,
		storeParts: storeParts, numParts: numParts,
		rejoinFor: *rejoin,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "benu-worker:", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed command-line options.
type runConfig struct {
	master     string
	threads    int
	cacheMB    int
	name       string
	metrics    bool
	storeParts []int
	numParts   int
	rejoinFor  time.Duration
}

// retryPolicy sizes a capped-backoff policy to roughly cover window:
// after the backoff ramps 100ms → 1s, each further attempt buys about a
// second of patience.
func retryPolicy(window time.Duration) *resilience.Policy {
	if window <= 0 {
		return nil
	}
	attempts := 4 + int(window/time.Second)
	return &resilience.Policy{
		MaxAttempts: attempts,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  time.Second,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

// parseParts parses the -store-parts syntax "i,j,.../n" into the
// locality advertisement of sched.WorkerConfig. Empty means none.
func parseParts(s string) ([]int, int, error) {
	if s == "" {
		return nil, 0, nil
	}
	idxs, denom, ok := strings.Cut(s, "/")
	if !ok {
		return nil, 0, fmt.Errorf("-store-parts %q: want parts/numparts, e.g. 0,2/4", s)
	}
	n, err := strconv.Atoi(denom)
	if err != nil || n < 1 {
		return nil, 0, fmt.Errorf("-store-parts %q: bad partition count %q", s, denom)
	}
	var parts []int
	for _, tok := range strings.Split(idxs, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || p < 0 || p >= n {
			return nil, 0, fmt.Errorf("-store-parts %q: bad partition %q", s, tok)
		}
		parts = append(parts, p)
	}
	return parts, n, nil
}

func run(rc runConfig) error {
	reg := obs.NewRegistry()
	start := time.Now()
	cfg := sched.WorkerConfig{
		Threads:       rc.threads,
		CacheBytes:    int64(rc.cacheMB) << 20,
		Name:          rc.name,
		Obs:           reg,
		StoreParts:    rc.storeParts,
		StoreNumParts: rc.numParts,
		Retry:         retryPolicy(rc.rejoinFor),
	}
	// The initial join retries within the same window the in-run RPCs
	// get: a worker may legitimately start before the master is up, or
	// mid-way through a master restart.
	w, err := sched.StartWorker(rc.master, cfg)
	for deadline := start.Add(rc.rejoinFor); err != nil && time.Now().Before(deadline); {
		fmt.Fprintf(os.Stderr, "benu-worker: %v (retrying until %s)\n", err, deadline.Round(time.Second).Format("15:04:05"))
		time.Sleep(500 * time.Millisecond)
		w, err = sched.StartWorker(rc.master, cfg)
	}
	if err != nil {
		return err
	}
	fmt.Printf("worker %d: joined %s (%d threads)\n", w.ID(), rc.master, rc.threads)

	// First SIGINT/SIGTERM: stop leasing, finish and report what we
	// hold, exit clean. Second signal: the default handler kills us.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "worker %d: %v: draining leased tasks (again to kill)\n", w.ID(), s)
		signal.Stop(sig)
		w.Shutdown()
	}()
	err = w.Wait()
	signal.Stop(sig)
	close(sig)
	stats, tasks := w.Stats()
	fmt.Printf("worker %d: tasks=%d matches=%d dbq=%d wall=%s\n",
		w.ID(), tasks, stats.Matches, stats.DBQueries, time.Since(start).Round(time.Millisecond))
	if rc.metrics {
		fmt.Print(reg.Snapshot().Text())
	}
	return err
}
