// Command benu-store manages the on-disk CSR store format of the kv
// disk backend (internal/csr): an immutable, checksummed, mmap-able
// image of one hash partition of the data graph.
//
// Usage:
//
//	benu-store build -graph edges.txt -out g.csr
//	benu-store build -preset lj -parts 4 -out lj.csr       # lj.csr.0 … lj.csr.3
//	benu-store info g.csr.0
//
// `build` converts an edge-list graph (or a synthetic preset) into one
// CSR file per hash partition; `info` validates a file and prints its
// header. The files plug into the enumerator through kv.OpenDisk — see
// docs/STORAGE.md for the deployment shapes.
package main

import (
	"flag"
	"fmt"
	"os"

	"benu/internal/csr"
	"benu/internal/gen"
	"benu/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benu-store:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: benu-store build|info ... (run a subcommand with -h for flags)")
	}
	switch args[0] {
	case "build":
		return build(args[1:])
	case "info":
		return info(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want build or info)", args[0])
	}
}

// build converts a graph into per-partition CSR files.
func build(args []string) error {
	fs := flag.NewFlagSet("benu-store build", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "data graph edge-list file (overrides -preset)")
		preset    = fs.String("preset", "as", "synthetic dataset preset: as, lj, ok, uk, fs")
		out       = fs.String("out", "", "output path; with -parts > 1, files are <out>.<part>")
		parts     = fs.Int("parts", 1, "hash-partition count (one file per partition)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("build: -out is required")
	}
	if *parts < 1 {
		return fmt.Errorf("build: -parts %d < 1", *parts)
	}
	g, err := loadGraph(*graphPath, *preset)
	if err != nil {
		return err
	}
	fmt.Printf("data graph: N=%d M=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())
	for p := 0; p < *parts; p++ {
		path := *out
		if *parts > 1 {
			path = fmt.Sprintf("%s.%d", *out, p)
		}
		if err := csr.WriteGraphFile(path, g, *parts, p); err != nil {
			return err
		}
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s: partition %d/%d, %d vertices, %d bytes\n",
			path, p, *parts, csr.NumListed(g.NumVertices(), *parts, p), st.Size())
	}
	return nil
}

// info validates CSR files and prints their headers.
func info(args []string) error {
	fs := flag.NewFlagSet("benu-store info", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("info: no files given")
	}
	for _, path := range fs.Args() {
		f, err := csr.Open(path)
		if err != nil {
			return err
		}
		part, parts := f.Partition()
		fmt.Printf("%s: valid, partition %d/%d, %d of %d vertices, %d bytes\n",
			path, part, parts, f.NumListed(), f.NumVertices(), f.SizeBytes())
		f.Close()
	}
	return nil
}

func loadGraph(path, preset string) (*graph.Graph, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	}
	p, err := gen.PresetByName(preset)
	if err != nil {
		return nil, err
	}
	return p.Generate(), nil
}
