// Command benu-plan generates and prints BENU execution plans: the raw
// plan, each optimization stage, and the best plan chosen by Algorithm 3.
//
// Usage:
//
//	benu-plan -pattern q4                 # best plan, all optimizations
//	benu-plan -pattern demo -stages       # show Fig. 3's optimization pipeline
//	benu-plan -pattern q2 -order 1,2,3,4,5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"benu/internal/estimate"
	"benu/internal/gen"
	"benu/internal/plan"
)

func main() {
	var (
		patternName = flag.String("pattern", "demo", "pattern name (see benu -help for the list)")
		orderStr    = flag.String("order", "", "fixed matching order as 1-based comma-separated vertices (default: search for the best)")
		stages      = flag.Bool("stages", false, "print the plan after each optimization stage")
		compressed  = flag.Bool("compressed", true, "apply VCBC compression")
		n           = flag.Int("n", 100000, "assumed data graph vertex count for cost estimation")
		d           = flag.Float64("d", 20, "assumed average degree for cost estimation")
	)
	flag.Parse()

	if err := run(*patternName, *orderStr, *stages, *compressed, *n, *d); err != nil {
		fmt.Fprintln(os.Stderr, "benu-plan:", err)
		os.Exit(1)
	}
}

func run(patternName, orderStr string, stages, compressed bool, n int, d float64) error {
	p, err := gen.PatternByName(patternName)
	if err != nil {
		return err
	}
	fmt.Printf("pattern: %s\n", p)
	if sbc := p.SymmetryBreaking(); len(sbc) > 0 {
		fmt.Printf("symmetry breaking:")
		for _, c := range sbc {
			fmt.Printf(" u%d<u%d", c[0]+1, c[1]+1)
		}
		fmt.Println()
	}
	st := estimate.UniformStats(n, d)

	var order []int
	if orderStr != "" {
		for _, tok := range strings.Split(orderStr, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("bad order element %q", tok)
			}
			order = append(order, v-1)
		}
	} else {
		opts := plan.AllOptions
		opts.VCBC = compressed
		best, err := plan.GenerateBestPlan(p, st, opts)
		if err != nil {
			return err
		}
		fmt.Printf("search: alpha=%d (%.1f%% of bound) beta=%d (%.1f%% of bound) in %s\n",
			best.Stats.Alpha, 100*float64(best.Stats.Alpha)/plan.AlphaUpperBound(p.NumVertices()),
			best.Stats.Beta, 100*float64(best.Stats.Beta)/plan.BetaUpperBound(p.NumVertices()),
			best.Stats.Elapsed.Round(1e6))
		order = best.Plan.Order
	}

	if !stages {
		opts := plan.AllOptions
		opts.VCBC = compressed
		pl, err := plan.Generate(p, order, opts)
		if err != nil {
			return err
		}
		cost := plan.EstimateCost(pl, st)
		fmt.Printf("estimated cost: comm=%.4g comp=%.4g\n\n%s", cost.Communication, cost.Computation, pl)
		return nil
	}

	stagesList := []struct {
		name string
		opts plan.Options
	}{
		{"raw", plan.Options{}},
		{"+Opt1 (CSE)", plan.Options{CSE: true}},
		{"+Opt2 (reorder)", plan.Options{CSE: true, Reorder: true}},
		{"+Opt3 (triangle cache)", plan.OptimizedUncompressed},
	}
	if compressed {
		stagesList = append(stagesList, struct {
			name string
			opts plan.Options
		}{"+VCBC compression", plan.AllOptions})
	}
	for _, s := range stagesList {
		pl, err := plan.Generate(p, order, s.opts)
		if err != nil {
			return err
		}
		cost := plan.EstimateCost(pl, st)
		fmt.Printf("--- %s (est. comm=%.4g comp=%.4g) ---\n%s\n", s.name, cost.Communication, cost.Computation, pl)
	}
	return nil
}
