package main

import "testing"

func TestRunBestPlan(t *testing.T) {
	if err := run("q4", "", false, true, 10000, 15); err != nil {
		t.Fatal(err)
	}
}

func TestRunFixedOrderStages(t *testing.T) {
	// The paper's running example: the fan with order u1,u3,u5,u2,u6,u4.
	if err := run("demo", "1,3,5,2,6,4", true, true, 100000, 20); err != nil {
		t.Fatal(err)
	}
	if err := run("demo", "1,3,5,2,6,4", true, false, 100000, 20); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", "", false, true, 100, 5); err == nil {
		t.Error("unknown pattern accepted")
	}
	if err := run("triangle", "1,x,3", false, true, 100, 5); err == nil {
		t.Error("malformed order accepted")
	}
	if err := run("triangle", "1,1,2", false, true, 100, 5); err == nil {
		t.Error("duplicate order accepted")
	}
}
