#!/usr/bin/env bash
# Disk-store smoke test: build CSR files with the real benu-store
# binary, enumerate over them through the mmap'd disk backend (single
# file, then hash-partitioned shards through the partition router), and
# check each count against the in-memory run of the same pattern ×
# preset. Bounded to seconds — this is the CI gate that the shipped
# on-disk format actually deploys.
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN=${PATTERN:-q4}
PRESET=${PRESET:-as}
PARTS=${PARTS:-3}

bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT

go build -o "$bin/benu" ./cmd/benu
go build -o "$bin/benu-store" ./cmd/benu-store

count() {
    "$bin/benu" "$@" -pattern "$PATTERN" -preset "$PRESET" |
        sed -n 's/^matches: \([0-9]*\).*/\1/p'
}

# Reference count from the in-memory store.
ref=$(count)
if [ -z "$ref" ]; then
    echo "smoke_disk: could not parse reference match count" >&2
    exit 1
fi

# Single whole-graph CSR file.
"$bin/benu-store" build -preset "$PRESET" -out "$bin/g1.csr" >/dev/null
"$bin/benu-store" info "$bin/g1.csr" >/dev/null
one=$(count -csr "$bin/g1.csr")
if [ "$one" != "$ref" ]; then
    echo "smoke_disk: single-file disk count $one != in-memory count $ref" >&2
    exit 1
fi

# Hash-partitioned shards composed through the partition router.
"$bin/benu-store" build -preset "$PRESET" -parts "$PARTS" -out "$bin/g.csr" >/dev/null
"$bin/benu-store" info "$bin"/g.csr.* >/dev/null
sharded=$(count -csr "$bin/g.csr")
if [ "$sharded" != "$ref" ]; then
    echo "smoke_disk: $PARTS-shard disk count $sharded != in-memory count $ref" >&2
    exit 1
fi

# A corrupted shard must fail loudly, never return a wrong count.
printf '\xff' | dd of="$bin/g.csr.1" bs=1 seek=100 conv=notrunc 2>/dev/null
if out=$(count -csr "$bin/g.csr" 2>&1); then
    echo "smoke_disk: corrupted shard was accepted (got: $out)" >&2
    exit 1
fi

echo "smoke_disk: OK ($PATTERN on $PRESET: $ref matches from 1 and $PARTS CSR files; corruption rejected)"
