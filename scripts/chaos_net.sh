#!/usr/bin/env bash
# Cross-process chaos test for the networked control plane's crash
# recovery. Two scenarios, both checked against the single-process
# reference count:
#
#   kill-master: a journaled benu-master is SIGKILLed mid-run and
#     restarted on the same ports with the same journal. The surviving
#     workers rejoin the new epoch, the journal replays the committed
#     prefix, and the resumed run must report the exact reference count
#     with replayed > 0 — exactly-once across a master crash.
#
#   kill-worker: one of two benu-workers is SIGKILLed mid-run; its
#     leases expire and re-queue, and the run must still report the
#     exact reference count.
#
# Bounded to tens of seconds — this is the CI gate that crash recovery
# works between real processes, not just in-process test harnesses.
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN=${PATTERN:-q4}
PRESET=${PRESET:-as}
PORT=${PORT:-17177}
STORE_PORT=$((PORT + 100))

bin=$(mktemp -d)
trap 'rm -rf "$bin"; kill -9 $(jobs -p) 2>/dev/null || true' EXIT

go build -o "$bin/benu" ./cmd/benu
go build -o "$bin/benu-master" ./cmd/benu-master
go build -o "$bin/benu-worker" ./cmd/benu-worker

# Reference count from the single-process deployment ("matches: N").
ref=$("$bin/benu" -pattern "$PATTERN" -preset "$PRESET" | sed -n 's/^matches: \([0-9]*\).*/\1/p')
if [ -z "$ref" ]; then
    echo "chaos_net: could not parse reference match count" >&2
    exit 1
fi

wait_bound() { # wait_bound <logfile>
    for _ in $(seq 1 100); do
        grep -q "serving tasks" "$1" 2>/dev/null && return 0
        sleep 0.1
    done
    echo "chaos_net: master never bound ($1)" >&2
    cat "$1" >&2
    return 1
}

master_flags=(-pattern "$PATTERN" -preset "$PRESET" -listen "127.0.0.1:$PORT"
    -store-listen "127.0.0.1:$STORE_PORT" -retry 8 -lease 2s)

### Scenario 1: kill -9 the journaled master mid-run, restart, resume.
journal="$bin/job.journal"
"$bin/benu-master" "${master_flags[@]}" -journal "$journal" >"$bin/m1.out" 2>&1 &
m1=$!
wait_bound "$bin/m1.out"

"$bin/benu-worker" -master "127.0.0.1:$PORT" -threads 2 -name chaos-w1 -rejoin-for 60s >"$bin/w1.out" 2>&1 &
w1=$!
"$bin/benu-worker" -master "127.0.0.1:$PORT" -threads 2 -name chaos-w2 -rejoin-for 60s >"$bin/w2.out" 2>&1 &
w2=$!

# Let both workers finish their initial join before injecting faults,
# then kill once the journal has grown past its post-join baseline —
# i.e. at least one more task committed (the job-spec record alone is
# over a kilobyte, so raw size is no signal of committed work).
for _ in $(seq 1 100); do
    grep -q "joined" "$bin/w1.out" 2>/dev/null && grep -q "joined" "$bin/w2.out" 2>/dev/null && break
    sleep 0.05
done
baseline=$(stat -c%s "$journal" 2>/dev/null || echo 0)
for _ in $(seq 1 200); do
    size=$(stat -c%s "$journal" 2>/dev/null || echo 0)
    [ "$size" -gt "$baseline" ] && break
    kill -0 "$m1" 2>/dev/null || break
    sleep 0.05
done
if kill -9 "$m1" 2>/dev/null; then
    echo "chaos_net: master SIGKILLed mid-run (journal at ${size:-0} bytes)"
else
    echo "chaos_net: run finished before the kill; restart still exercises replay-to-done"
fi
wait "$m1" 2>/dev/null || true

"$bin/benu-master" "${master_flags[@]}" -journal "$journal" >"$bin/m2.out" 2>&1 &
m2=$!
wait_bound "$bin/m2.out"

if ! wait "$m2"; then
    echo "chaos_net: restarted master failed" >&2
    cat "$bin/m2.out" >&2
    exit 1
fi
if ! wait "$w1" || ! wait "$w2"; then
    echo "chaos_net: a worker failed to survive the master restart" >&2
    tail -5 "$bin/w1.out" "$bin/w2.out" >&2
    exit 1
fi

net=$(sed -n 's/^matches=\([0-9]*\).*/\1/p' "$bin/m2.out")
if [ "$net" != "$ref" ]; then
    echo "chaos_net: resumed count $net != reference $ref" >&2
    cat "$bin/m1.out" "$bin/m2.out" >&2
    exit 1
fi
replayed=$(sed -n 's/.*replayed=\([0-9]*\).*/\1/p' "$bin/m2.out")
if [ -z "$replayed" ] || [ "$replayed" -eq 0 ]; then
    echo "chaos_net: restarted master replayed nothing (journal dead on arrival?)" >&2
    cat "$bin/m2.out" >&2
    exit 1
fi
echo "chaos_net: kill-master OK ($net matches, $replayed tasks replayed from the journal)"

### Scenario 2: kill -9 one worker mid-run; lease expiry heals it.
"$bin/benu-master" "${master_flags[@]}" >"$bin/m3.out" 2>&1 &
m3=$!
wait_bound "$bin/m3.out"

"$bin/benu-worker" -master "127.0.0.1:$PORT" -threads 2 -name chaos-victim >"$bin/w3.out" 2>&1 &
w3=$!
"$bin/benu-worker" -master "127.0.0.1:$PORT" -threads 2 -name chaos-survivor >"$bin/w4.out" 2>&1 &
w4=$!

for _ in $(seq 1 100); do
    grep -q "joined" "$bin/w3.out" 2>/dev/null && break
    sleep 0.05
done
if kill -9 "$w3" 2>/dev/null; then
    echo "chaos_net: worker SIGKILLed mid-run"
fi
wait "$w3" 2>/dev/null || true

if ! wait "$m3"; then
    echo "chaos_net: master failed after losing a worker" >&2
    cat "$bin/m3.out" >&2
    exit 1
fi
wait "$w4" || true

net=$(sed -n 's/^matches=\([0-9]*\).*/\1/p' "$bin/m3.out")
if [ "$net" != "$ref" ]; then
    echo "chaos_net: count after worker kill $net != reference $ref" >&2
    cat "$bin/m3.out" >&2
    exit 1
fi
echo "chaos_net: kill-worker OK ($net matches despite a SIGKILLed worker)"
