#!/usr/bin/env bash
# Multi-process smoke test: build the real binaries, run one benu-master
# and two benu-worker processes over loopback TCP on a small dataset,
# and check the master's reported match count against the single-process
# benu run of the same pattern × preset. Bounded to seconds — this is
# the CI gate that the shipped binaries actually deploy.
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN=${PATTERN:-q4}
PRESET=${PRESET:-as}
PORT=${PORT:-17077}

bin=$(mktemp -d)
trap 'rm -rf "$bin"; kill $(jobs -p) 2>/dev/null || true' EXIT

go build -o "$bin/benu" ./cmd/benu
go build -o "$bin/benu-master" ./cmd/benu-master
go build -o "$bin/benu-worker" ./cmd/benu-worker

# Reference count from the single-process deployment ("matches: N").
ref=$("$bin/benu" -pattern "$PATTERN" -preset "$PRESET" | sed -n 's/^matches: \([0-9]*\).*/\1/p')
if [ -z "$ref" ]; then
    echo "smoke_net: could not parse reference match count" >&2
    exit 1
fi

"$bin/benu-master" -pattern "$PATTERN" -preset "$PRESET" -listen "127.0.0.1:$PORT" >"$bin/master.out" 2>&1 &
master_pid=$!

# Wait for the master to bind before pointing workers at it.
for _ in $(seq 1 50); do
    grep -q "serving tasks" "$bin/master.out" 2>/dev/null && break
    sleep 0.1
done

"$bin/benu-worker" -master "127.0.0.1:$PORT" -threads 2 -name smoke-w1 >"$bin/w1.out" 2>&1 &
"$bin/benu-worker" -master "127.0.0.1:$PORT" -threads 2 -name smoke-w2 >"$bin/w2.out" 2>&1 &

if ! wait "$master_pid"; then
    echo "smoke_net: master failed" >&2
    cat "$bin/master.out" >&2
    exit 1
fi
wait

net=$(sed -n 's/^matches=\([0-9]*\).*/\1/p' "$bin/master.out")
if [ "$net" != "$ref" ]; then
    echo "smoke_net: multi-process count $net != single-process count $ref" >&2
    cat "$bin/master.out" >&2
    exit 1
fi
workers=$(sed -n 's/.*workers=\([0-9]*\).*/\1/p' "$bin/master.out")
if [ "$workers" != "2" ]; then
    echo "smoke_net: master saw $workers workers, want 2" >&2
    cat "$bin/master.out" >&2
    exit 1
fi
echo "smoke_net: OK ($PATTERN on $PRESET: $net matches across 2 worker processes)"
