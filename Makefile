# Development targets. `make check` is the tier-1 verification gate
# (build + vet + tests); `make race` adds the race detector over the
# concurrency-heavy packages. Everything is stdlib-only Go — no tools to
# install.

GO ?= go

.PHONY: all build test short race vet bench check clean

all: check

## build: compile every package and binary
build:
	$(GO) build ./...

## test: the full test suite (~1 min; includes the experiment regenerators)
test:
	$(GO) test ./...

## short: the quick suite (skips the experiment regenerators)
short:
	$(GO) test -short ./...

## race: race-detector pass over the concurrent packages (obs registry,
## simulated cluster, KV store, cache)
race:
	$(GO) test -race ./internal/obs ./internal/cluster ./internal/kv ./internal/cache

## vet: static analysis
vet:
	$(GO) vet ./...

## bench: micro-benchmarks and quick-mode experiment wrappers
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## check: tier-1 verification — what CI (and the next PR) must keep green
check: build vet test race

clean:
	$(GO) clean ./...
