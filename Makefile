# Development targets. `make check` is the tier-1 verification gate
# (build + vet + lint + tests); `make race` adds the race detector over
# the concurrency-heavy packages; `make lint` runs the project's own
# analyzer suite (cmd/benu-lint, see docs/LINTING.md). Everything is
# stdlib-only Go — no tools to install.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test short race race-chaos vet lint lint-sarif bench bench-json bench-gate check diff chaos chaos-net smoke-net smoke-disk fuzz tidy-check clean

all: check

## build: compile every package and binary
build:
	$(GO) build ./...

## test: the full test suite (~1 min; includes the experiment regenerators)
test:
	$(GO) test ./...

## short: the quick suite (skips the experiment regenerators)
short:
	$(GO) test -short ./...

## race: race-detector pass over the full module, in -short mode so the
## experiment regenerators (already covered by `make test`) don't pay
## the ~10x race-runtime tax; every package — not a hand-picked list —
## so new concurrency can't dodge the detector by landing in an
## unlisted package
race:
	$(GO) test -race -short ./...

## race-chaos: the fault-injection suite under the race detector over
## the WHOLE module — crash recovery, epoch fencing, journal replay,
## duplicate delivery, and the RPC fault injector with -race watching
## every access. `make chaos` runs the same pattern over the four
## packages that own those tests; this lane runs ./... so a chaos test
## added anywhere else is still raced (its own CI job)
race-chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestNetChaos|TestResilient|TestTaskRetry|TestFailFast|TestRunContext|TestLeaseExpiry|TestSteal|TestJournal|TestEpoch|TestDuplicate|TestWorkerShutdown|TestFlakyConn' ./...

## diff: the differential matrix in its quick configuration — every
## preset pattern × random data graphs × plan variants × backends,
## cross-validated against the reference enumerator (see docs/TESTING.md)
diff:
	$(GO) test -short -run 'TestDifferential' ./internal/check

## chaos: fault-injected verification under the race detector — the
## resilient differential columns over transiently faulty stores
## (including the networked net-retry and net-journal columns), task
## re-execution and cancellation tests, the TCP acceptance scenario,
## the control plane's crash tests (kill-a-worker-mid-task,
## kill-the-master-mid-run with journal recovery), epoch fencing,
## duplicate-delivery dedup, and the RPC fault injector
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestNetChaos|TestResilient|TestTaskRetry|TestFailFast|TestRunContext|TestLeaseExpiry|TestSteal|TestJournal|TestEpoch|TestDuplicate|TestWorkerShutdown|TestFlakyConn' ./internal/check ./internal/cluster ./internal/cluster/sched ./internal/kv

## chaos-net: cross-process crash recovery — SIGKILL a journaled
## benu-master mid-run and restart it on the same ports/journal
## (workers rejoin the new epoch, replay resumes exactly-once), and
## SIGKILL a benu-worker mid-run (lease expiry heals it); match counts
## cross-checked against the single-process run (tens of seconds,
## CI-gated)
chaos-net:
	./scripts/chaos_net.sh

## smoke-net: multi-process smoke — one benu-master and two benu-worker
## OS processes over loopback TCP on a small dataset, match count
## cross-checked against the single-process benu run (seconds, CI-gated)
smoke-net:
	./scripts/smoke_net.sh

## smoke-disk: disk-store smoke — build CSR files with benu-store,
## enumerate over the mmap'd disk backend (single file and sharded),
## cross-check counts against the in-memory run, and verify a
## corrupted shard fails loudly (seconds, CI-gated)
smoke-disk:
	./scripts/smoke_disk.sh

## fuzz: run each native fuzz target for $(FUZZTIME) (default 30s)
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzGraphParse -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run='^$$' -fuzz=FuzzAdjListDecode -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run='^$$' -fuzz=FuzzUvarint -fuzztime=$(FUZZTIME) ./internal/varint
	$(GO) test -run='^$$' -fuzz=FuzzPlanDecode -fuzztime=$(FUZZTIME) ./internal/plan
	$(GO) test -run='^$$' -fuzz=FuzzVCBCRoundTrip -fuzztime=$(FUZZTIME) ./internal/vcbc
	$(GO) test -run='^$$' -fuzz=FuzzCSRDecode -fuzztime=$(FUZZTIME) ./internal/csr
	$(GO) test -run='^$$' -fuzz=FuzzJournalReplay -fuzztime=$(FUZZTIME) ./internal/cluster/sched/journal

## vet: stock static analysis
vet:
	$(GO) vet ./...

## lint: the project's own analyzer suite — determinism, instrswitch,
## metricname, ctxflow, decodesafe, lockorder, goroleak, wiresafe,
## hotpath (docs/LINTING.md) over every package
lint:
	$(GO) run ./cmd/benu-lint ./...

## lint-sarif: the same suite as SARIF 2.1.0 on stdout, for GitHub code
## scanning annotations (exit status matches `make lint`)
lint-sarif:
	$(GO) run ./cmd/benu-lint -sarif ./...

## tidy-check: go.mod/go.sum must be tidy (CI hygiene job; needs a
## clean working tree to be meaningful)
tidy-check:
	$(GO) mod tidy
	git diff --exit-code -- go.mod go.sum
	@test -z "$$(git status --porcelain -- go.mod go.sum)" || { echo "go mod tidy changed go.mod/go.sum"; exit 1; }

## bench: micro-benchmarks and quick-mode experiment wrappers
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## bench-json: machine-readable data-plane benchmark snapshot — triangle
## and q4 on the ok-s dataset over local and TCP backends plus the
## million-vertex pl-1m dataset, baseline vs prefetch+compact
## (BENCH_JSON overrides the output path)
BENCH_JSON ?= BENCH_PR6.json
bench-json:
	$(GO) run ./cmd/benu-bench -bench-json $(BENCH_JSON)

## bench-gate: regenerate the snapshot into /tmp and gate it against the
## committed BENCH_PR6.json — intra-run variant ratios plus match counts
## and loosely-bounded absolute walls (docs/PERFORMANCE.md). This is the
## CI perf-regression gate.
bench-gate:
	$(GO) run ./cmd/benu-bench -bench-json /tmp/bench-fresh.json -bench-baseline BENCH_PR6.json

## check: tier-1 verification — what CI (and the next PR) must keep green
check: build vet lint test race diff chaos

clean:
	$(GO) clean ./...
