package benu

// Public facade: the high-level API a downstream user consumes. The
// implementation lives in internal/ packages (see doc.go for the map);
// the aliases below make the core types usable without importing
// internal paths, and the functions compose the common pipelines —
// plan → simulated cluster → counts/matches/compressed codes.

import (
	"context"
	"io"

	"benu/internal/cluster"
	"benu/internal/estimate"
	"benu/internal/exec"
	"benu/internal/gen"
	"benu/internal/graph"
	"benu/internal/kv"
	"benu/internal/obs"
	"benu/internal/plan"
	"benu/internal/resilience"
	"benu/internal/vcbc"
)

// Core graph types.
type (
	// Graph is an undirected, unlabeled (optionally vertex-labeled)
	// simple data graph.
	Graph = graph.Graph
	// Pattern is a connected pattern graph with its automorphism group
	// and symmetry-breaking constraints.
	Pattern = graph.Pattern
	// TotalOrder is the ≺ order on data vertices used by symmetry
	// breaking.
	TotalOrder = graph.TotalOrder
	// ExecutionPlan is a compiled BENU execution plan.
	ExecutionPlan = plan.Plan
	// PlanOptions selects optimization passes (CSE, reordering, triangle
	// caching, VCBC compression, degree filter, clique cache).
	PlanOptions = plan.Options
	// ClusterConfig parameterizes the simulated shared-nothing cluster.
	ClusterConfig = cluster.Config
	// Result summarizes a distributed enumeration: counts, communication
	// volume, cache hit rates, per-worker stats.
	Result = cluster.Result
	// Code is one VCBC-compressed result.
	Code = vcbc.Code
	// Store serves adjacency sets (the distributed database interface).
	Store = kv.Store
	// Metrics is a concurrency-safe registry of counters, gauges, and
	// histograms — the unified observability layer every runtime package
	// reports into. See docs/METRICS.md for the metric name reference.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a Metrics registry; it
	// renders to aligned text (WriteText) and JSON (JSON).
	MetricsSnapshot = obs.Snapshot
	// RetryPolicy configures store-call retries: attempt budget,
	// exponential backoff with deterministic jitter, per-attempt deadline.
	RetryPolicy = resilience.Policy
	// BreakerConfig configures the per-backend circuit breaker.
	BreakerConfig = resilience.BreakerConfig
	// ResilientStoreOptions configures NewResilientStore.
	ResilientStoreOptions = kv.ResilientOptions
)

// NewGraph builds a data graph with n vertices from an edge list.
// Duplicate edges and self-loops are dropped.
func NewGraph(n int, edges [][2]int64) *Graph { return graph.FromEdges(n, edges) }

// ReadGraph parses a whitespace-separated edge list ('#' comments).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph writes g in the edge-list format ReadGraph parses.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// NewPattern builds a connected pattern graph.
func NewPattern(name string, n int, edges [][2]int64) (*Pattern, error) {
	return graph.NewPattern(name, n, edges)
}

// NewLabeledPattern builds a pattern whose vertices carry labels (the
// property-graph extension); matches must preserve labels.
func NewLabeledPattern(name string, n int, edges [][2]int64, labels []int64) (*Pattern, error) {
	return graph.NewLabeledPattern(name, n, edges, labels)
}

// PatternByName resolves built-in pattern names: triangle, square,
// chordal-square, demo, q1..q9, cliqueK, pathK, cycleK, starK.
func PatternByName(name string) (*Pattern, error) { return gen.PatternByName(name) }

// DefaultPlanOptions enables every optimization including VCBC
// compression — the configuration the paper evaluates.
func DefaultPlanOptions() PlanOptions { return plan.AllOptions }

// NewOrder computes the (degree, id) total order ≺ on g's vertices.
func NewOrder(g *Graph) *TotalOrder { return graph.NewTotalOrder(g) }

// DefaultClusterConfig returns the simulated-cluster defaults for g
// (4 machines × 4 threads, full-graph cache, τ=500, triangle cache on).
func DefaultClusterConfig(g *Graph) ClusterConfig { return cluster.Defaults(g) }

// PlanBest runs Algorithm 3 against g's statistics and returns the best
// execution plan for p under opts.
func PlanBest(p *Pattern, g *Graph, opts PlanOptions) (*ExecutionPlan, error) {
	st := estimate.NewStats(g, estimate.MaxMomentDefault)
	res, err := plan.GenerateBestPlan(p, st, opts)
	if err != nil {
		return nil, err
	}
	return res.Plan, nil
}

// Options bundles the end-to-end knobs of Count/Enumerate. The zero
// value means: all plan optimizations on, cluster defaults (4 machines ×
// 4 threads, full-graph cache, τ=500, triangle cache on).
type Options struct {
	// Plan overrides the plan optimization selection; nil = all on.
	Plan *PlanOptions
	// Cluster overrides the simulated cluster configuration; nil =
	// cluster.Defaults for the data graph.
	Cluster *ClusterConfig
	// Metrics, when non-nil, is the registry the run records into: task
	// and straggler histograms, DB traffic, cache behaviour, store query
	// latency (the store is wrapped for timing). nil falls back to the
	// process-wide default registry, without store latency timing.
	Metrics *Metrics
	// Observer, when non-nil, receives the metrics snapshot of the
	// finished run. When Metrics is nil a private registry is created for
	// the run, so the snapshot covers exactly this enumeration.
	Observer func(*MetricsSnapshot)
	// Prefetch turns on the ENU-stage batched adjacency prefetcher
	// (synchronous unless Cluster.PrefetchWorkers says otherwise).
	// Ignored when Cluster is set — configure ClusterConfig.Prefetch
	// directly there.
	Prefetch bool
	// CompactAdjacency moves the per-machine data plane to the compact
	// varint-delta adjacency encoding (smaller cache entries and, on
	// networked stores, less wire volume). Ignored when Cluster is set —
	// configure ClusterConfig.CompactAdjacency directly there.
	CompactAdjacency bool
	// Ctx bounds the run: cancellation stops task dispatch on every
	// simulated machine, interrupts store traffic, and makes the run
	// return the context's error. nil means context.Background().
	Ctx context.Context
}

// ctx returns the run-bounding context.
func (o *Options) ctx() context.Context {
	if o != nil && o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o *Options) resolve(g *Graph) (PlanOptions, ClusterConfig) {
	popts := plan.AllOptions
	cfg := cluster.Defaults(g)
	if o != nil {
		if o.Plan != nil {
			popts = *o.Plan
		}
		if o.Cluster != nil {
			cfg = *o.Cluster
		} else {
			cfg.Prefetch = o.Prefetch
			cfg.CompactAdjacency = o.CompactAdjacency
		}
	}
	if g.Labeled() && cfg.LabelOf == nil {
		cfg.LabelOf = g.Label
	}
	return popts, cfg
}

// registry returns the registry this run should record into, or nil when
// neither Metrics nor Observer asks for one.
func (o *Options) registry() *Metrics {
	if o == nil {
		return nil
	}
	if o.Metrics != nil {
		return o.Metrics
	}
	if o.Observer != nil {
		return NewMetrics()
	}
	return nil
}

// instrument wires reg into the run: the cluster config reports there and
// the store is wrapped with latency observation. A nil reg leaves both
// untouched (cluster.Run then uses the process-wide default registry).
func (o *Options) instrument(reg *Metrics, cfg *ClusterConfig, store Store) Store {
	if reg == nil {
		return store
	}
	cfg.Obs = reg
	return kv.ObserveStore(store, reg)
}

// observe delivers the final snapshot to the Observer, if any.
func (o *Options) observe(reg *Metrics) {
	if o != nil && o.Observer != nil {
		o.Observer(reg.Snapshot())
	}
}

// NewMetrics creates an empty metrics registry to pass as
// Options.Metrics (or as ClusterConfig.Obs for RunOnStore).
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Count enumerates p in g on the simulated cluster and returns the
// result summary (Result.Matches is the subgraph count).
func Count(p *Pattern, g *Graph, opts *Options) (*Result, error) {
	popts, cfg := opts.resolve(g)
	pl, err := PlanBest(p, g, popts)
	if err != nil {
		return nil, err
	}
	reg := opts.registry()
	store := opts.instrument(reg, &cfg, kv.NewLocal(g))
	res, err := cluster.RunContext(opts.ctx(), pl, store, graph.NewTotalOrder(g), g.Degree, cfg)
	if err != nil {
		return nil, err
	}
	opts.observe(reg)
	return res, nil
}

// Enumerate streams every match of p in g to emit. The slice is indexed
// by pattern vertex and reused — copy to retain; return false to stop.
// emit is called concurrently from worker threads unless the cluster
// config is single-threaded.
func Enumerate(p *Pattern, g *Graph, opts *Options, emit func(match []int64) bool) (*Result, error) {
	popts, cfg := opts.resolve(g)
	popts.VCBC = false // full matches requested
	pl, err := PlanBest(p, g, popts)
	if err != nil {
		return nil, err
	}
	cfg.Emit = emit
	reg := opts.registry()
	store := opts.instrument(reg, &cfg, kv.NewLocal(g))
	res, err := cluster.RunContext(opts.ctx(), pl, store, graph.NewTotalOrder(g), g.Degree, cfg)
	if err != nil {
		return nil, err
	}
	opts.observe(reg)
	return res, nil
}

// EnumerateCodes streams VCBC-compressed results to emit under the same
// concurrency and lifetime rules as Enumerate. Expand or count codes
// with Code.Expand / Code.Count using the plan's FreeOrderConstraints.
func EnumerateCodes(p *Pattern, g *Graph, opts *Options, emit func(c *Code) bool) (*ExecutionPlan, *Result, error) {
	popts, cfg := opts.resolve(g)
	popts.VCBC = true
	pl, err := PlanBest(p, g, popts)
	if err != nil {
		return nil, nil, err
	}
	cfg.EmitCode = emit
	reg := opts.registry()
	store := opts.instrument(reg, &cfg, kv.NewLocal(g))
	res, err := cluster.RunContext(opts.ctx(), pl, store, graph.NewTotalOrder(g), g.Degree, cfg)
	if err != nil {
		return nil, nil, err
	}
	opts.observe(reg)
	return pl, res, nil
}

// RunOnStore executes a previously generated plan against any adjacency
// store — e.g. a TCP-backed kv.Client spanning storage nodes — with the
// given degree oracle for task splitting. Set cfg.Obs to a NewMetrics
// registry (and wrap the store with ObserveStore) to collect the run's
// metrics in isolation.
func RunOnStore(pl *ExecutionPlan, store Store, ord *TotalOrder, degree func(v int64) int, cfg ClusterConfig) (*Result, error) {
	return cluster.Run(pl, store, ord, degree, cfg)
}

// RunOnStoreContext is RunOnStore bounded by ctx: cancellation stops
// task dispatch on every worker, interrupts store traffic, and returns
// the context's error once the workers drain.
func RunOnStoreContext(ctx context.Context, pl *ExecutionPlan, store Store, ord *TotalOrder, degree func(v int64) int, cfg ClusterConfig) (*Result, error) {
	return cluster.RunContext(ctx, pl, store, ord, degree, cfg)
}

// NewResilientStore wraps any Store with the fault-tolerance layer the
// paper inherits from its HBase client: bounded retries with exponential
// backoff, optional per-attempt deadlines, and a per-backend circuit
// breaker (metrics under resilience.*, see docs/METRICS.md). Compose it
// outermost — e.g. over ObserveStore over a DialStore client — and pair
// with ClusterConfig.TaskRetries for task-level re-execution.
func NewResilientStore(store Store, opts ResilientStoreOptions) *kv.Resilient {
	return kv.NewResilient(store, opts)
}

// ObserveStore wraps store with per-query latency observation recording
// into reg: a kv.<backend>.batchget_latency_ns histogram (single-key
// demand misses are one-key batches) plus an error counter (see
// docs/METRICS.md). Use with RunOnStore; Count/Enumerate wrap their
// store automatically when Options.Metrics or Options.Observer is set.
func ObserveStore(store Store, reg *Metrics) Store { return kv.ObserveStore(store, reg) }

// ServeGraph shards g over p TCP storage nodes on loopback and returns
// the servers plus their addresses; DialStore connects a Store to them.
// Together they stand up the distributed database of the paper's Fig. 2.
func ServeGraph(g *Graph, p int) (servers []*kv.Server, addrs []string, err error) {
	return kv.ServeGraph(g, p)
}

// DialStore connects to storage nodes started by ServeGraph (or any
// kv.Serve deployment).
func DialStore(addrs []string, numVertices int) (*kv.Client, error) {
	return kv.Dial(addrs, numVertices)
}

// OpenDisk memory-maps an immutable CSR store file built by
// `benu-store build` (internal/csr) and serves it zero-copy through the
// Store interface; graphs larger than RAM enumerate at page-cache
// speed. Per-partition files compose with NewPartitionedStore or
// NewReplicatedStore — see docs/STORAGE.md.
func OpenDisk(path string) (*kv.Disk, error) { return kv.OpenDisk(path, nil) }

// NewPartitionedStore routes reads across hash partitions (vertex v
// lives in parts[v mod len(parts)]): the composition step for sharded
// deployments of OpenDisk files or any other per-partition stores.
func NewPartitionedStore(parts []Store, numVertices int) Store {
	return kv.NewPartitioned(parts, numVertices)
}

// NewReplicatedStore extends the partition router to N replicas per
// partition with deterministic read fan-out and breaker-driven
// failover: replicas[p][r] is replica r of partition p. See
// docs/STORAGE.md for the failover semantics and the store.replica.*
// metrics.
func NewReplicatedStore(replicas [][]Store, numVertices int, opts ReplicatedStoreOptions) (Store, error) {
	return kv.NewReplicated(replicas, numVertices, opts)
}

// ReplicatedStoreOptions configures NewReplicatedStore.
type ReplicatedStoreOptions = kv.ReplicatedOptions

// BruteForceCount counts matches by plain backtracking — the reference
// implementation used as ground truth in this repository's tests.
func BruteForceCount(p *Pattern, g *Graph) int64 {
	return graph.RefCount(p, g, graph.NewTotalOrder(g))
}

// SyntheticGraph generates the scaled synthetic stand-in dataset with the
// given preset name (as, lj, ok, uk, fs).
func SyntheticGraph(preset string) (*Graph, error) {
	p, err := gen.PresetByName(preset)
	if err != nil {
		return nil, err
	}
	return p.Cached(), nil
}

// Compile lowers a plan for manual task-level execution (exec.Executor);
// most callers want Count/Enumerate instead.
func Compile(pl *ExecutionPlan) (*exec.Program, error) { return exec.Compile(pl) }

// DeltaEnumerator answers dynamic-graph queries: the matches created by
// inserting one data edge (or destroyed by removing one).
type DeltaEnumerator = exec.DeltaEnumerator

// NewDeltaEnumerator prepares anchored plans for delta queries on p.
// Count the new matches after inserting (a, b) into a kv.Mutable store:
//
//	d, _ := benu.NewDeltaEnumerator(p)
//	store.AddEdge(a, b)
//	src := exec.StoreSource{S: store}
//	n, _ := d.Count(src, store.NumVertices(), ord, a, b, exec.Options{})
func NewDeltaEnumerator(p *Pattern) (*DeltaEnumerator, error) {
	return exec.NewDeltaEnumerator(p, plan.OptimizedUncompressed)
}

// NewMutableStore wraps a graph snapshot as an updatable adjacency store
// (AddEdge/RemoveEdge visible to subsequent queries with zero index
// maintenance — the paper's §I argument against indexed competitors).
func NewMutableStore(g *Graph) *kv.Mutable { return kv.NewMutable(g) }
