// Package benu is a from-scratch Go implementation of BENU, the
// distributed subgraph enumeration framework of Wang et al. (ICDE 2019):
// "BENU: Distributed Subgraph Enumeration with Backtracking-Based
// Framework".
//
// The library is organized as internal packages, each owning one system
// from the paper:
//
//   - internal/graph — graph model, symmetry breaking, total order,
//     brute-force reference enumerator;
//   - internal/plan — execution plans, the three optimization passes,
//     VCBC-compression rewrite, cost model and the best-plan search
//     (Algorithm 3);
//   - internal/exec — the backtracking plan interpreter with the
//     per-thread triangle cache;
//   - internal/kv — the distributed adjacency-set store (in-process and
//     TCP/net-rpc backends);
//   - internal/cache — the per-machine LRU database cache;
//   - internal/vcbc — the compressed-result codec;
//   - internal/cluster — the simulated shared-nothing cluster with task
//     generation and task splitting;
//   - internal/obs — the observability layer: a concurrency-safe metrics
//     registry (counters, gauges, bounded histograms, task spans) every
//     runtime package reports into, surfaced through Options.Observer,
//     Options.Metrics, and the -metrics command-line flags (the metric
//     name reference is docs/METRICS.md);
//   - internal/join — the BFS-style baselines (TwinTwig left-deep join
//     and a BiGJoin-style worst-case optimal join);
//   - internal/gen — synthetic datasets and the evaluation patterns;
//   - internal/estimate — cardinality estimation for the planner;
//   - internal/experiments — regenerators for every table and figure of
//     the paper's evaluation.
//
// The benchmarks in bench_test.go regenerate each table/figure; the
// executables under cmd/ expose the same functionality on the command
// line, and examples/ holds runnable application scenarios.
package benu
